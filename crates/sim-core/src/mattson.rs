//! Single-pass Mattson stack-distance profiling (reuse-distance
//! simulation).
//!
//! For a cache whose contents at every instant are exactly the `k` most
//! recently used blocks of each set — true LRU, for any `k` — hit/miss
//! outcomes at *all* associativities fall out of one pass over the
//! stream: the access's *stack distance* (its block's position in the
//! set's recency order, 0 = MRU) is `d`, and a `k`-way LRU cache hits iff
//! `d < k` (Mattson et al., 1970). One histogram of stack distances
//! therefore replaces one full cache replay per associativity, the DEW
//! speedup for inclusion-preserving policies.
//!
//! The profiler maintains one bounded recency list per set (capacity
//! [`StackDistanceProfile::max_ways`]) and a shared histogram. Distances
//! `>= max_ways` fold into a single *beyond* bucket — they miss at every
//! associativity the profile answers for, so nothing is lost. The list
//! update *is* the per-set state of a `max_ways`-way LRU cache, so one
//! capture costs about one LRU replay at the widest associativity of
//! interest and answers for every narrower one.
//!
//! # Which policies the profile is exact for
//!
//! Only policies whose set contents always equal the LRU top-`k` — the
//! *inclusion* (stack) property with LRU's capacity-independent priority.
//! [`policy_qualifies`] is the predicate: a policy qualifies iff it
//! describes itself as the all-zero stack-IPV kernel (hit and fill both
//! move to MRU, victim = stack bottom), i.e. true LRU semantics.
//!
//! LIP-family stack policies are *not* exact under this histogram even
//! though they keep recency stacks: LIP inserts at the LRU position, so
//! its contents diverge from LRU's. Counterexample: stream `A B C B` in
//! one set at 2 ways. After `A B C`, LIP holds `{A, C}` (each fill lands
//! at the LRU slot, evicting the previous occupant) so the final `B`
//! misses — but `B`'s LRU stack distance is 1, which this histogram
//! would score as a 2-way hit. LIP's insertion position depends on the
//! capacity `k` itself, so no capacity-independent priority exists and
//! no single stack serves all `k` at once. GIPPR/IPV trees fail for the
//! same reason with arbitrary insertion/promotion positions. Those
//! policies keep their per-configuration replays; see DESIGN.md §13.
//!
//! Warm-up follows the replay contract exactly: the first `warmup`
//! accesses update the recency lists but are not histogrammed, so
//! derived hit/miss counts are bit-identical to
//! `replay_llc(stream, geom, TrueLru, warmup, ..)` at every `k`.

use crate::access::Access;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use crate::slice::SliceKernel;

/// A per-set stack-distance histogram captured from one stream pass.
///
/// Answers exact LRU hit/miss counts for every associativity up to
/// [`max_ways`](StackDistanceProfile::max_ways) at the captured set
/// partition (set count and line size are baked in at capture: a
/// different set count re-buckets the stream and needs its own profile —
/// [`capture_many`](StackDistanceProfile::capture_many) amortizes that
/// into the same single pass).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistanceProfile {
    sets: usize,
    line_bytes: u64,
    max_ways: usize,
    /// `hist[d]` = measured accesses whose stack distance was exactly `d`.
    hist: Vec<u64>,
    /// Measured accesses at distance `>= max_ways`, first touches included
    /// — misses at every answerable associativity.
    beyond: u64,
    /// Measured accesses total.
    measured: u64,
    /// Instructions represented by the measured portion (sum of
    /// `icount_delta`).
    instructions: u64,
}

/// The recency lists driven during a capture: one bounded MRU→LRU tag
/// list per set, flattened.
struct Stacks {
    tags: Vec<u64>,
    len: Vec<u16>,
    cap: usize,
}

impl Stacks {
    fn new(sets: usize, cap: usize) -> Self {
        Stacks {
            tags: vec![0; sets * cap],
            len: vec![0; sets],
            cap,
        }
    }

    /// Touches `tag` in `set`: returns its stack distance (`cap` when not
    /// resident) and moves it to the front, evicting the list bottom when
    /// a new tag overflows the bound.
    #[inline]
    fn touch(&mut self, set: usize, tag: u64) -> usize {
        let base = set * self.cap;
        let len = usize::from(self.len[set]);
        let window = &mut self.tags[base..base + len];
        match window.iter().position(|&t| t == tag) {
            Some(d) => {
                window.copy_within(..d, 1);
                window[0] = tag;
                d
            }
            None => {
                let new_len = (len + 1).min(self.cap);
                let window = &mut self.tags[base..base + new_len];
                window.copy_within(..new_len - 1, 1);
                window[0] = tag;
                self.len[set] = new_len as u16;
                self.cap
            }
        }
    }
}

impl StackDistanceProfile {
    /// Captures a profile of `stream` at `geom`'s set partition
    /// (`geom.ways()` is ignored — the profile answers for every
    /// associativity in `1..=max_ways`). The first `warmup` accesses
    /// update recency state without being counted, mirroring the replay
    /// engines' warm-up contract.
    pub fn capture(
        stream: &[Access],
        geom: &CacheGeometry,
        warmup: usize,
        max_ways: usize,
    ) -> Self {
        Self::capture_many(stream, &[(*geom, max_ways)], warmup)
            .pop()
            .expect("one spec in, one profile out")
    }

    /// Captures one profile per `(geometry, max_ways)` spec in a single
    /// pass over `stream` — the multi-configuration entry for sweeps
    /// whose set counts differ (fixed-capacity associativity sweeps).
    /// The stream is read once; every spec's recency lists advance per
    /// access.
    pub fn capture_many(
        stream: &[Access],
        specs: &[(CacheGeometry, usize)],
        warmup: usize,
    ) -> Vec<Self> {
        for (geom, max_ways) in specs {
            let _ = geom;
            assert!(
                (1..=u16::MAX as usize).contains(max_ways),
                "max_ways must be in 1..=65535, got {max_ways}"
            );
        }
        let mut profiles: Vec<StackDistanceProfile> = specs
            .iter()
            .map(|(geom, max_ways)| StackDistanceProfile {
                sets: geom.sets(),
                line_bytes: geom.line_bytes(),
                max_ways: *max_ways,
                hist: vec![0; *max_ways],
                beyond: 0,
                measured: 0,
                instructions: 0,
            })
            .collect();
        let mut stacks: Vec<Stacks> = specs
            .iter()
            .map(|(geom, max_ways)| Stacks::new(geom.sets(), *max_ways))
            .collect();
        let warmup = warmup.min(stream.len());

        for (i, a) in stream.iter().enumerate() {
            let measured = i >= warmup;
            for (j, (geom, _)) in specs.iter().enumerate() {
                let block = geom.block_of(a.addr);
                let set = geom.set_of_block(block);
                let d = stacks[j].touch(set, block);
                if measured {
                    let p = &mut profiles[j];
                    if d < p.max_ways {
                        p.hist[d] += 1;
                    } else {
                        p.beyond += 1;
                    }
                    p.measured += 1;
                    p.instructions += u64::from(a.icount_delta);
                }
            }
        }
        profiles
    }

    /// The set count the stream was bucketed by.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// The line size the stream was blocked by.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// The widest associativity this profile answers for.
    pub fn max_ways(&self) -> usize {
        self.max_ways
    }

    /// Measured accesses (warm-up excluded).
    pub fn accesses(&self) -> u64 {
        self.measured
    }

    /// Instructions represented by the measured portion.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The stack-distance histogram (index = distance, 0 = MRU re-touch);
    /// distances `>= max_ways` are in [`beyond`](Self::beyond).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Measured accesses at distance `>= max_ways` (first touches
    /// included).
    pub fn beyond(&self) -> u64 {
        self.beyond
    }

    /// Exact LRU hits at associativity `ways` (`1..=max_ways`): the
    /// accesses whose stack distance was under `ways`.
    pub fn hits(&self, ways: usize) -> u64 {
        assert!(
            (1..=self.max_ways).contains(&ways),
            "profile answers ways 1..={}, asked {ways}",
            self.max_ways
        );
        self.hist[..ways].iter().sum()
    }

    /// Exact LRU misses at associativity `ways`.
    pub fn misses(&self, ways: usize) -> u64 {
        self.measured - self.hits(ways)
    }

    /// LRU misses per kilo-instruction at associativity `ways`, on the
    /// same formula as `CacheStats::mpki`.
    pub fn mpki(&self, ways: usize) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.misses(ways) as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Folds another profile of the *same configuration* into this one
    /// (histograms and counters sum). Captures over disjoint set ranges
    /// of one stream — shard routing — merge to exactly the whole-stream
    /// profile, because stack distances depend only on per-set
    /// subsequences.
    ///
    /// # Panics
    ///
    /// Panics when the configurations (sets, line size, `max_ways`)
    /// differ.
    pub fn absorb(&mut self, other: &StackDistanceProfile) {
        assert!(
            self.sets == other.sets
                && self.line_bytes == other.line_bytes
                && self.max_ways == other.max_ways,
            "cannot merge profiles of different configurations"
        );
        for (h, o) in self.hist.iter_mut().zip(&other.hist) {
            *h += o;
        }
        self.beyond += other.beyond;
        self.measured += other.measured;
        self.instructions += other.instructions;
    }
}

/// Whether `kernel` has true-LRU semantics: the all-zero stack IPV (every
/// hit and fill moves the block to MRU; victims come from the stack
/// bottom). This is the exactness condition for
/// [`StackDistanceProfile`] — see the module docs for why LIP-family
/// vectors (insertion away from MRU) do not qualify.
pub fn kernel_is_lru(kernel: &SliceKernel) -> bool {
    matches!(kernel, SliceKernel::StackIpv { ipv } if ipv.iter().all(|&e| e == 0))
}

/// Whether `policy`'s hit/miss outcomes are answered exactly by a
/// [`StackDistanceProfile`] at every associativity: the policy must
/// describe itself as an LRU-equivalent stack kernel
/// ([`kernel_is_lru`]). Conservative by construction — policies without
/// a kernel never qualify, even if behaviourally LRU.
pub fn policy_qualifies(policy: &dyn ReplacementPolicy) -> bool {
    policy.slice_kernel().is_some_and(|k| kernel_is_lru(&k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn geom(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, ways, 64).unwrap()
    }

    fn reads(blocks: &[u64]) -> Vec<Access> {
        blocks
            .iter()
            .map(|&b| Access::read(b * 64, 0).with_icount_delta(2))
            .collect()
    }

    #[test]
    fn hand_trace_distances() {
        // One set; blocks A=0 B=1 C=2. Stream A B C A: distances are
        // cold, cold, cold, 2 (A is below B and C).
        let g = geom(1, 4);
        let p = StackDistanceProfile::capture(&reads(&[0, 1, 2, 0]), &g, 0, 4);
        assert_eq!(p.histogram(), &[0, 0, 1, 0]);
        assert_eq!(p.beyond(), 3);
        assert_eq!(p.accesses(), 4);
        assert_eq!(p.hits(2), 0, "2-way LRU misses the A re-touch");
        assert_eq!(p.hits(3), 1, "3-way LRU keeps A resident");
        assert_eq!(p.instructions(), 8);
    }

    #[test]
    fn warmup_updates_state_without_counting() {
        // Warm on A B; measured C A: C is cold, A is at distance 1 after
        // the warm-up touches — provided warm-up updated the stacks.
        let g = geom(1, 4);
        let p = StackDistanceProfile::capture(&reads(&[0, 1, 1, 0]), &g, 2, 4);
        assert_eq!(p.accesses(), 2);
        assert_eq!(p.histogram(), &[1, 1, 0, 0]);
        assert_eq!(p.hits(2), 2);
    }

    #[test]
    fn bounded_stack_folds_far_distances() {
        // max_ways 2 with a 3-block cycle: every re-touch is at distance
        // 2 in the unbounded stack, i.e. beyond the bound.
        let g = geom(1, 2);
        let p = StackDistanceProfile::capture(&reads(&[0, 1, 2, 0, 1, 2]), &g, 0, 2);
        assert_eq!(p.histogram(), &[0, 0]);
        assert_eq!(p.beyond(), 6);
        assert_eq!(p.misses(2), 6);
    }

    #[test]
    fn capture_many_matches_single_captures() {
        let stream: Vec<Access> = (0..500u64)
            .map(|i| {
                let b = (i * 2654435761) % 97;
                Access::read(b * 64, 0).with_icount_delta(1)
            })
            .collect();
        let specs = [(geom(4, 4), 8usize), (geom(8, 2), 4usize)];
        let many = StackDistanceProfile::capture_many(&stream, &specs, 100);
        for ((g, w), got) in specs.iter().zip(&many) {
            let single = StackDistanceProfile::capture(&stream, g, 100, *w);
            assert_eq!(*got, single);
        }
    }

    #[test]
    fn absorb_merges_disjoint_set_ranges() {
        let g = geom(4, 4);
        let stream: Vec<Access> = (0..400u64)
            .map(|i| Access::read(((i * 7) % 64) * 64, 0))
            .collect();
        let whole = StackDistanceProfile::capture(&stream, &g, 0, 4);
        // Route by set into two halves, preserving per-set order.
        let lo: Vec<Access> = stream
            .iter()
            .copied()
            .filter(|a| g.set_of(a.addr) < 2)
            .collect();
        let hi: Vec<Access> = stream
            .iter()
            .copied()
            .filter(|a| g.set_of(a.addr) >= 2)
            .collect();
        let mut merged = StackDistanceProfile::capture(&lo, &g, 0, 4);
        merged.absorb(&StackDistanceProfile::capture(&hi, &g, 0, 4));
        assert_eq!(merged, whole);
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn absorb_rejects_mismatched_configs() {
        let stream = reads(&[0, 1]);
        let mut a = StackDistanceProfile::capture(&stream, &geom(2, 2), 0, 2);
        let b = StackDistanceProfile::capture(&stream, &geom(4, 2), 0, 2);
        a.absorb(&b);
    }

    #[test]
    fn lru_kernel_qualifies_lip_does_not() {
        assert!(kernel_is_lru(&SliceKernel::StackIpv { ipv: vec![0; 17] }));
        let mut lip = vec![0u8; 17];
        lip[16] = 15; // insert at the LRU position
        assert!(!kernel_is_lru(&SliceKernel::StackIpv { ipv: lip }));
        assert!(!kernel_is_lru(&SliceKernel::PlruIpv { ipv: vec![0; 17] }));
    }
}
