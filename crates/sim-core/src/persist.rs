//! Crash-safe artifact persistence.
//!
//! Every artifact the pipeline writes — experiment CSVs, the replay
//! benchmark JSON, workload-cache spills, GA checkpoints, the run
//! manifest — goes through [`atomic_write`] / [`atomic_write_with`]:
//! the payload is staged in a sibling temporary file (`<name>.tmp`),
//! flushed and fsynced, then renamed over the destination. A crash at any
//! instant leaves either the old artifact or the new one, never a torn
//! hybrid; at worst an orphaned `.tmp` file remains, which writers ignore
//! and startup pruning removes.
//!
//! The module is instrumented with [`sim_fault`] write points (labeled by
//! the destination path), so torn writes, disk-full errors, committed
//! corruption, and kill-mid-write are all injectable deterministically in
//! tests. In default builds the hooks compile to no-ops.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Exit status used when a `sim_fault` `exit` clause simulates a hard
/// kill mid-write; distinctive so kill-and-resume tests can assert the
/// crash was the injected one.
pub const FAULT_EXIT_CODE: i32 = 86;

/// The staging path for `path`: the same file name with `.tmp` appended,
/// in the same directory (so the final rename never crosses filesystems).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: parent directories are
/// created, the payload is staged in [`tmp_path`], fsynced, and renamed
/// into place. On any error the staging file is removed, so failures
/// leave the previous artifact intact and no orphan behind.
///
/// # Errors
///
/// Propagates filesystem errors (including injected ones).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_with(path, |w| w.write_all(bytes))
}

/// [`atomic_write`] with a streaming producer: `fill` writes the payload
/// into an in-memory buffer, which is then committed atomically. The
/// buffer indirection is what makes injected torn/corrupt faults exact
/// (the fault sees the complete payload), and it keeps `fill` free of
/// partial-write hazards.
///
/// # Errors
///
/// Propagates `fill`'s error or any filesystem error.
pub fn atomic_write_with<F>(path: &Path, fill: F) -> io::Result<()>
where
    F: FnOnce(&mut dyn Write) -> io::Result<()>,
{
    let mut payload: Vec<u8> = Vec::new();
    fill(&mut payload)?;

    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }

    let label = path.to_string_lossy();
    let fault = sim_fault::on_write(&label);
    if fault == sim_fault::WriteFault::Error {
        return Err(io::Error::other(format!(
            "injected write fault: no space left on device ({label})"
        )));
    }

    let tmp = tmp_path(path);
    let result = commit(&tmp, path, payload, fault);
    if result.is_err() {
        // Failures must not leave staging orphans; the previous artifact
        // at `path` is untouched either way.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Stages `payload` at `tmp`, applies any injected fault, and renames it
/// over `path`.
fn commit(
    tmp: &Path,
    path: &Path,
    mut payload: Vec<u8>,
    fault: sim_fault::WriteFault,
) -> io::Result<()> {
    use sim_fault::WriteFault;

    let torn = match fault {
        WriteFault::Torn(keep) => {
            let keep = keep.unwrap_or(payload.len() / 2).min(payload.len());
            payload.truncate(keep);
            true
        }
        WriteFault::Corrupt => {
            // Flip one mid-payload bit but commit successfully: the
            // deterministic stand-in for post-commit corruption, which
            // only a reader-side CRC can catch.
            let mid = payload.len() / 2;
            match payload.get_mut(mid) {
                Some(byte) => *byte ^= 0x40,
                None => payload.push(0x40),
            }
            false
        }
        _ => false,
    };

    {
        let mut file = fs::File::create(tmp)?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    if torn {
        // The simulated crash happened mid-write: the staging file holds a
        // truncated payload and the commit never happens. The caller's
        // error path removes the staging file (a real crash would leave it
        // for startup pruning).
        return Err(io::Error::other(format!(
            "injected write fault: torn write ({})",
            path.display()
        )));
    }
    if fault == WriteFault::Exit {
        // Simulated SIGKILL at the worst instant: staged but not renamed.
        eprintln!(
            "sim-fault: exiting mid-write of {} (staged, not committed)",
            path.display()
        );
        std::process::exit(FAULT_EXIT_CODE);
    }
    fs::rename(tmp, path)?;
    sync_dir(path);
    Ok(())
}

/// Fsyncs the destination's directory so the rename itself is durable
/// (without this, a power cut can forget the rename while remembering the
/// data). Advisory: filesystems that cannot fsync directories are skipped.
fn sync_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(handle) = fs::File::open(dir) {
            let _ = handle.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces_atomically() {
        let dir = scratch("basic");
        let path = dir.join("nested/deeper/out.csv");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists(), "no staging orphan");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_producer_error_leaves_old_artifact() {
        let dir = scratch("fill-err");
        let path = dir.join("out.bin");
        atomic_write(&path, b"good").unwrap();
        let err = atomic_write_with(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("producer failed"))
        });
        assert!(err.is_err());
        assert_eq!(fs::read(&path).unwrap(), b"good");
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_path_appends_suffix() {
        assert_eq!(
            tmp_path(Path::new("results/cache/micro-x.wlc")),
            Path::new("results/cache/micro-x.wlc.tmp")
        );
        assert_eq!(tmp_path(Path::new("fig10.csv")), Path::new("fig10.csv.tmp"));
    }

    mod injected {
        use super::*;

        #[test]
        fn torn_write_preserves_old_artifact_and_cleans_up() {
            if !sim_fault::COMPILED_IN {
                return;
            }
            let dir = scratch("torn");
            let path = dir.join("table.csv");
            atomic_write(&path, b"old,intact\n").unwrap();
            sim_fault::with_plan("torn@table.csv", || {
                let err = atomic_write(&path, b"new,content,that,tears\n");
                assert!(err.is_err(), "torn write must surface as an error");
            });
            assert_eq!(fs::read(&path).unwrap(), b"old,intact\n");
            assert!(!tmp_path(&path).exists(), "torn staging file removed");
            // The next write (fault spent) succeeds normally.
            atomic_write(&path, b"new\n").unwrap();
            assert_eq!(fs::read(&path).unwrap(), b"new\n");
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn enospc_fails_without_touching_anything() {
            if !sim_fault::COMPILED_IN {
                return;
            }
            let dir = scratch("enospc");
            let path = dir.join("data.json");
            atomic_write(&path, b"{}").unwrap();
            sim_fault::with_plan("enospc@data.json", || {
                let err = atomic_write(&path, b"{\"big\":true}").unwrap_err();
                assert!(err.to_string().contains("no space left"), "{err}");
            });
            assert_eq!(fs::read(&path).unwrap(), b"{}");
            assert!(!tmp_path(&path).exists());
            let _ = fs::remove_dir_all(&dir);
        }

        #[test]
        fn corrupt_commits_a_damaged_payload() {
            if !sim_fault::COMPILED_IN {
                return;
            }
            let dir = scratch("corrupt");
            let path = dir.join("blob.bin");
            let payload = vec![0u8; 64];
            sim_fault::with_plan("corrupt@blob.bin", || {
                atomic_write(&path, &payload).unwrap();
            });
            let written = fs::read(&path).unwrap();
            assert_eq!(written.len(), 64);
            assert_ne!(written, payload, "exactly the committed-corruption case");
            assert_eq!(written.iter().filter(|&&b| b != 0).count(), 1);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
