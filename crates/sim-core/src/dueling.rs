//! Set-dueling: leader-set selection and policy-selection counters.
//!
//! Set-dueling (Qureshi et al., ISCA 2007) dedicates a few *leader sets* to
//! each candidate policy and lets the remaining *follower sets* adopt
//! whichever candidate is currently missing less. The paper's 2-DGIPPR uses
//! one 11-bit PSEL counter; 4-DGIPPR uses three (two pair counters and a
//! meta counter, after Loh's multi-queue dueling).

use std::error::Error;
use std::fmt;

/// Error returned when a dueling configuration is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DuelingError {
    /// `sets` was zero or not a power of two.
    BadSetCount(usize),
    /// `leaders_per_policy` does not divide the set count, or leaves regions
    /// too small to host one leader per policy.
    BadLeaderCount {
        /// Requested leaders per policy.
        leaders_per_policy: usize,
        /// Total sets in the cache.
        sets: usize,
        /// Number of competing policies.
        policies: usize,
    },
}

impl fmt::Display for DuelingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DuelingError::BadSetCount(n) => {
                write!(f, "set count {n} must be a nonzero power of two")
            }
            DuelingError::BadLeaderCount {
                leaders_per_policy,
                sets,
                policies,
            } => write!(
                f,
                "cannot place {leaders_per_policy} leaders per policy for {policies} policies \
                 in {sets} sets"
            ),
        }
    }
}

impl Error for DuelingError {}

/// A saturating up/down policy-selection counter.
///
/// Semantics follow the paper: the counter counts **up** when the first
/// policy of a duel misses in its leader sets and **down** when the second
/// does; followers adopt the first policy while the counter is negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Psel {
    value: i32,
    min: i32,
    max: i32,
    bits: u32,
}

impl Psel {
    /// Creates a zeroed counter of `bits` width (paper uses 11).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits < 32, "PSEL width must be in 1..=31");
        let half = 1i32 << (bits - 1);
        Psel {
            value: 0,
            min: -half,
            max: half - 1,
            bits,
        }
    }

    /// Current counter value.
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Records a miss by the first dueled policy (counts up, saturating).
    #[inline]
    pub fn up(&mut self) {
        self.value = (self.value + 1).min(self.max);
    }

    /// Records a miss by the second dueled policy (counts down, saturating).
    #[inline]
    pub fn down(&mut self) {
        self.value = (self.value - 1).max(self.min);
    }

    /// Index (0 or 1) of the policy followers should adopt: the first while
    /// the counter is below zero, otherwise the second.
    #[inline]
    pub fn winner(&self) -> usize {
        usize::from(self.value >= 0)
    }
}

/// The role a set plays in a duel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRole {
    /// The set always runs candidate policy `.0` and feeds the counters.
    Leader(usize),
    /// The set runs whichever candidate currently wins.
    Follower,
}

/// Assigns leader sets to candidate policies.
///
/// The cache's sets are divided into `leaders_per_policy` equally sized
/// constituencies; inside each constituency one set is dedicated to each
/// candidate at an offset that varies per constituency, so leaders are
/// spread over the whole index space rather than clustered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderMap {
    sets: usize,
    policies: usize,
    region_size: usize,
    stride: usize,
    salt: usize,
}

impl LeaderMap {
    /// Creates a map for `policies` candidates over `sets` sets with
    /// `leaders_per_policy` leader sets each (32 is the customary value for
    /// a 4096-set LLC).
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] when the sets cannot be partitioned as
    /// requested.
    pub fn new(
        sets: usize,
        policies: usize,
        leaders_per_policy: usize,
    ) -> Result<Self, DuelingError> {
        Self::new_salted(sets, policies, leaders_per_policy, 0)
    }

    /// Like [`LeaderMap::new`] with a `salt` that shifts every leader's
    /// placement, so independent duels on the same cache (e.g. DGIPPR's
    /// vector duel plus its bypass duel) do not pin their leaders to the
    /// same sets.
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] when the sets cannot be partitioned as
    /// requested.
    pub fn new_salted(
        sets: usize,
        policies: usize,
        leaders_per_policy: usize,
        salt: usize,
    ) -> Result<Self, DuelingError> {
        if sets == 0 || !sets.is_power_of_two() {
            return Err(DuelingError::BadSetCount(sets));
        }
        if leaders_per_policy == 0
            || policies == 0
            || sets % leaders_per_policy != 0
            || sets / leaders_per_policy < policies
        {
            return Err(DuelingError::BadLeaderCount {
                leaders_per_policy,
                sets,
                policies,
            });
        }
        let region_size = sets / leaders_per_policy;
        Ok(LeaderMap {
            sets,
            policies,
            region_size,
            stride: region_size / policies,
            salt,
        })
    }

    /// Total sets covered by this map.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of candidate policies.
    pub fn policies(&self) -> usize {
        self.policies
    }

    /// The role of `set` in the duel.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn role(&self, set: usize) -> SetRole {
        assert!(
            set < self.sets,
            "set {set} out of range (sets = {})",
            self.sets
        );
        let region = set / self.region_size;
        let offset = set % self.region_size;
        // Spread each constituency's leaders to a different offset so a
        // pathological stride in the workload cannot hammer only leaders.
        let base = region.wrapping_mul(0x9e37_79b9).wrapping_add(self.salt) % self.region_size;
        for p in 0..self.policies {
            if offset == (base + p * self.stride) % self.region_size {
                return SetRole::Leader(p);
            }
        }
        SetRole::Follower
    }

    /// Number of leader sets per policy.
    pub fn leaders_per_policy(&self) -> usize {
        self.sets / self.region_size
    }
}

/// The counter arrangement used by a duel.
#[derive(Debug, Clone)]
pub enum Selector {
    /// A fixed winner; no counters (degenerate, used for single-policy runs).
    Static(usize),
    /// Two candidates, one PSEL counter (DIP, DRRIP, 2-DGIPPR).
    Two(Psel),
    /// Four candidates: pair counters plus a meta counter (4-DGIPPR).
    Four {
        /// Duel between candidates 0 and 1.
        p01: Psel,
        /// Duel between candidates 2 and 3.
        p23: Psel,
        /// Duel between the two pairs.
        meta: Psel,
    },
}

impl Selector {
    /// Routes a leader-set miss by candidate `policy` into the counters.
    #[inline]
    pub fn record_miss(&mut self, policy: usize) {
        match self {
            Selector::Static(_) => {}
            Selector::Two(psel) => match policy {
                0 => psel.up(),
                _ => psel.down(),
            },
            Selector::Four { p01, p23, meta } => {
                match policy {
                    0 => p01.up(),
                    1 => p01.down(),
                    2 => p23.up(),
                    _ => p23.down(),
                }
                // The meta counter duels pair {0,1} against pair {2,3}.
                if policy < 2 {
                    meta.up();
                } else {
                    meta.down();
                }
            }
        }
    }

    /// The candidate followers should currently adopt.
    #[inline]
    pub fn winner(&self) -> usize {
        match self {
            Selector::Static(p) => *p,
            Selector::Two(psel) => psel.winner(),
            Selector::Four { p01, p23, meta } => {
                if meta.winner() == 0 {
                    p01.winner()
                } else {
                    2 + p23.winner()
                }
            }
        }
    }

    /// Total counter storage in bits.
    pub fn counter_bits(&self) -> u64 {
        match self {
            Selector::Static(_) => 0,
            Selector::Two(p) => u64::from(p.bits()),
            Selector::Four { p01, p23, meta } => {
                u64::from(p01.bits()) + u64::from(p23.bits()) + u64::from(meta.bits())
            }
        }
    }
}

/// A leader map plus selector: the full set-dueling mechanism.
///
/// # Example
///
/// ```
/// use sim_core::dueling::DuelController;
///
/// # fn main() -> Result<(), sim_core::dueling::DuelingError> {
/// let mut duel = DuelController::two(4096, 32, 11)?;
/// // Hammer policy 0's leader sets with misses; followers switch to 1.
/// for set in 0..4096 {
///     if duel.policy_for_set(set) == 0 {
///         duel.record_miss(set);
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DuelController {
    map: LeaderMap,
    selector: Selector,
}

impl DuelController {
    /// Creates a two-candidate duel with one `bits`-wide PSEL counter.
    ///
    /// # Errors
    ///
    /// Propagates [`DuelingError`] from leader-map construction.
    pub fn two(sets: usize, leaders_per_policy: usize, bits: u32) -> Result<Self, DuelingError> {
        Self::two_salted(sets, leaders_per_policy, bits, 0)
    }

    /// Like [`DuelController::two`] with a leader-placement salt (see
    /// [`LeaderMap::new_salted`]).
    ///
    /// # Errors
    ///
    /// Propagates [`DuelingError`] from leader-map construction.
    pub fn two_salted(
        sets: usize,
        leaders_per_policy: usize,
        bits: u32,
        salt: usize,
    ) -> Result<Self, DuelingError> {
        Ok(DuelController {
            map: LeaderMap::new_salted(sets, 2, leaders_per_policy, salt)?,
            selector: Selector::Two(Psel::new(bits)),
        })
    }

    /// Creates a four-candidate tournament with three `bits`-wide counters.
    ///
    /// # Errors
    ///
    /// Propagates [`DuelingError`] from leader-map construction.
    pub fn four(sets: usize, leaders_per_policy: usize, bits: u32) -> Result<Self, DuelingError> {
        Ok(DuelController {
            map: LeaderMap::new(sets, 4, leaders_per_policy)?,
            selector: Selector::Four {
                p01: Psel::new(bits),
                p23: Psel::new(bits),
                meta: Psel::new(bits),
            },
        })
    }

    /// The leader map in use.
    pub fn leader_map(&self) -> &LeaderMap {
        &self.map
    }

    /// The candidate policy `set` should execute right now: leaders run
    /// their own candidate, followers run the current winner.
    #[inline]
    pub fn policy_for_set(&self, set: usize) -> usize {
        match self.map.role(set) {
            SetRole::Leader(p) => p,
            SetRole::Follower => self.selector.winner(),
        }
    }

    /// Feeds a miss in `set` into the counters (no-op for followers).
    #[inline]
    pub fn record_miss(&mut self, set: usize) {
        if let SetRole::Leader(p) = self.map.role(set) {
            self.selector.record_miss(p);
        }
    }

    /// The candidate followers currently adopt.
    #[inline]
    pub fn winner(&self) -> usize {
        self.selector.winner()
    }

    /// Total counter storage in bits (the paper's "33 bits for the entire
    /// microprocessor" for 4-DGIPPR).
    pub fn counter_bits(&self) -> u64 {
        self.selector.counter_bits()
    }

    /// Canonical bytes of the mutable counter state, for
    /// `ReplacementPolicy::audit_global_digest`. The leader map is static
    /// configuration and is excluded.
    pub fn audit_digest(&self) -> Vec<u8> {
        match &self.selector {
            Selector::Static(p) => (*p as u32).to_le_bytes().to_vec(),
            Selector::Two(psel) => psel.value().to_le_bytes().to_vec(),
            Selector::Four { p01, p23, meta } => [p01, p23, meta]
                .iter()
                .flat_map(|p| p.value().to_le_bytes())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psel_saturates_both_ends() {
        let mut p = Psel::new(4); // range [-8, 7]
        for _ in 0..100 {
            p.up();
        }
        assert_eq!(p.value(), 7);
        for _ in 0..100 {
            p.down();
        }
        assert_eq!(p.value(), -8);
    }

    #[test]
    fn psel_winner_semantics_match_paper() {
        let mut p = Psel::new(11);
        assert_eq!(p.winner(), 1, "counter at zero: follow second policy");
        p.down();
        assert_eq!(p.winner(), 0, "negative counter: follow first policy");
    }

    #[test]
    #[should_panic(expected = "PSEL width")]
    fn psel_rejects_zero_width() {
        let _ = Psel::new(0);
    }

    #[test]
    fn leader_map_counts() {
        let map = LeaderMap::new(4096, 2, 32).unwrap();
        let mut counts = [0usize; 2];
        let mut followers = 0;
        for s in 0..4096 {
            match map.role(s) {
                SetRole::Leader(p) => counts[p] += 1,
                SetRole::Follower => followers += 1,
            }
        }
        assert_eq!(counts, [32, 32]);
        assert_eq!(followers, 4096 - 64);
    }

    #[test]
    fn leader_map_four_policies_disjoint() {
        let map = LeaderMap::new(4096, 4, 32).unwrap();
        let mut counts = [0usize; 4];
        for s in 0..4096 {
            if let SetRole::Leader(p) = map.role(s) {
                counts[p] += 1;
            }
        }
        assert_eq!(counts, [32, 32, 32, 32]);
    }

    #[test]
    fn leader_map_rejects_bad_configs() {
        assert!(LeaderMap::new(0, 2, 32).is_err());
        assert!(LeaderMap::new(100, 2, 32).is_err()); // not a power of two
        assert!(LeaderMap::new(64, 2, 0).is_err());
        // 64 sets / 64 leaders = 1-set regions: cannot host 2 policies.
        assert!(LeaderMap::new(64, 2, 64).is_err());
    }

    #[test]
    fn two_way_duel_converges() {
        let mut d = DuelController::two(1024, 16, 11).unwrap();
        // Only policy 1's leaders miss -> followers should pick policy 0.
        for _ in 0..3 {
            for s in 0..1024 {
                if let SetRole::Leader(1) = d.leader_map().role(s) {
                    d.record_miss(s);
                }
            }
        }
        assert_eq!(d.winner(), 0);
        // Leaders keep their own policies regardless.
        for s in 0..1024 {
            if let SetRole::Leader(p) = d.leader_map().role(s) {
                assert_eq!(d.policy_for_set(s), p);
            } else {
                assert_eq!(d.policy_for_set(s), 0);
            }
        }
    }

    #[test]
    fn four_way_tournament_picks_least_missing() {
        let mut d = DuelController::four(4096, 32, 11).unwrap();
        // Miss everywhere except policy 2's leaders: winner must be 2.
        for _ in 0..5 {
            for s in 0..4096 {
                match d.leader_map().role(s) {
                    SetRole::Leader(2) => {}
                    SetRole::Leader(_) => d.record_miss(s),
                    SetRole::Follower => {}
                }
            }
        }
        assert_eq!(d.winner(), 2);
    }

    #[test]
    fn four_way_meta_counter_weighs_pairs() {
        let mut d = DuelController::four(4096, 32, 11).unwrap();
        // Pair {0,1} misses a lot; within pair {2,3}, candidate 3 misses more.
        for _ in 0..5 {
            for s in 0..4096 {
                match d.leader_map().role(s) {
                    SetRole::Leader(0) | SetRole::Leader(1) => d.record_miss(s),
                    SetRole::Leader(3) => d.record_miss(s),
                    _ => {}
                }
            }
        }
        assert_eq!(d.winner(), 2);
    }

    #[test]
    fn counter_bits_match_paper() {
        let two = DuelController::two(4096, 32, 11).unwrap();
        assert_eq!(two.counter_bits(), 11);
        let four = DuelController::four(4096, 32, 11).unwrap();
        assert_eq!(four.counter_bits(), 33);
    }

    #[test]
    fn static_selector_never_changes() {
        let mut s = Selector::Static(1);
        s.record_miss(0);
        s.record_miss(1);
        assert_eq!(s.winner(), 1);
        assert_eq!(s.counter_bits(), 0);
    }

    #[test]
    fn error_display() {
        assert!(!DuelingError::BadSetCount(3).to_string().is_empty());
        let e = DuelingError::BadLeaderCount {
            leaders_per_policy: 1,
            sets: 2,
            policies: 4,
        };
        assert!(!e.to_string().is_empty());
    }
}
