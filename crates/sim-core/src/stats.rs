//! Hit/miss accounting for one cache level.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters collected by a [`SetAssocCache`](crate::SetAssocCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total lookups (demand + writeback).
    pub accesses: u64,
    /// Lookups that found their block resident.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Valid blocks displaced to make room for fills.
    pub evictions: u64,
    /// Evicted blocks that were dirty (must be written downstream).
    pub writebacks: u64,
    /// Misses the policy chose not to fill (left the cache untouched).
    pub bypasses: u64,
}

impl CacheStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were recorded.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses were recorded.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Misses per thousand instructions, given the retired instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: CacheStats) -> CacheStats {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        self.writebacks += rhs.writebacks;
        self.bypasses += rhs.bypasses;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.2}% miss), {} evictions, {} writebacks, {} bypasses",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0,
            self.evictions,
            self.writebacks,
            self.bypasses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            evictions: 1,
            ..CacheStats::new()
        };
        assert!((s.miss_ratio() - 0.3).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn mpki() {
        let s = CacheStats {
            misses: 5,
            ..CacheStats::new()
        };
        assert!((s.mpki(1000) - 5.0).abs() < 1e-12);
        assert!((s.mpki(2000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let a = CacheStats {
            accesses: 1,
            hits: 1,
            ..CacheStats::new()
        };
        let b = CacheStats {
            accesses: 2,
            hits: 0,
            misses: 2,
            evictions: 1,
            writebacks: 1,
            bypasses: 1,
        };
        let c = a + b;
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 2);
        assert_eq!(c.writebacks, 1);
        assert_eq!(c.bypasses, 1);
    }

    #[test]
    fn display_nonempty() {
        assert!(CacheStats::new().to_string().contains("accesses"));
    }
}
