//! A persistent worker pool for data-parallel simulation work.
//!
//! The GA fitness loop and the experiment harness both fan identical,
//! independent tasks (replay this stream, score this genome) across cores.
//! Spawning a fresh scoped thread per chunk per generation — the original
//! `crossbeam::thread::scope` pattern — costs a thread create/join cycle
//! per task batch. This pool spawns its threads once and reuses them across
//! every generation of every experiment in the process.
//!
//! Design notes:
//!
//! * **Scoped semantics without scoped threads.** [`WorkerPool::run`]
//!   borrows its closure and result buffer from the caller's stack and
//!   erases the lifetime to hand work to long-lived threads. Safety comes
//!   from the completion protocol: `run` does not return until every task
//!   index has finished executing, so the borrowed closure outlives every
//!   dereference.
//! * **The caller helps.** The calling thread executes tasks alongside the
//!   workers. This keeps single-threaded fallback trivial (a pool with zero
//!   workers still completes) and makes nested `run` calls deadlock-free:
//!   a worker that itself calls `run` will drain the inner job on its own
//!   if no one else is free.
//! * **A depth-aware executor budget.** Each pool admits at most `cap`
//!   concurrently executing threads (workers and callers combined). A
//!   thread holds exactly one slot regardless of how deeply its task
//!   re-enters [`WorkerPool::run`], so stacked fan-out — the runner
//!   batching workloads whose tasks themselves batch policies — cannot
//!   oversubscribe the machine. The [`global`] pool's budget is
//!   `available_parallelism`.
//! * **Panic transparency.** A panicking task does not poison the pool;
//!   the first payload is captured and re-raised on the calling thread
//!   after the batch drains, mirroring `std::thread::scope`.
//! * **Graceful degradation.** A failed worker spawn shrinks the pool
//!   (down to zero workers — the caller-helps protocol still completes
//!   every batch sequentially) with a one-time warning instead of
//!   aborting. While the caller waits for straggler tasks, a watchdog
//!   reports which task indices of which labeled batch are still in
//!   flight once they exceed `SIM_WATCHDOG_MS` (default 30 s), so a hung
//!   task is diagnosable instead of a silent stall. Both paths are
//!   deterministic under `sim_fault` injection.
//!
//! This module is the workspace's only `unsafe` whitelist: the crate root
//! denies `unsafe_code` and every other crate forbids it outright (the
//! `xtask lint` gate enforces both). Each of the four unsafe sites below
//! carries a `// SAFETY:` comment tying it to the completion protocol.

// Lifetime erasure for the scoped-semantics protocol needs `unsafe`; the
// crate-level `#![deny(unsafe_code)]` is lifted for this module only.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

thread_local! {
    /// The `Shared` of the pool whose execution slot this thread currently
    /// holds (null when none). A thread that already owns a slot — a worker
    /// inside `worker_loop`, or a caller inside `run` — must not acquire a
    /// second one for nested `run` calls on the same pool, otherwise an
    /// outer batch fanning out through callees (runner → replay_many →
    /// fitness_many) would stack one slot per nesting level and
    /// oversubscribe the machine.
    static SLOT_OWNER: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// The erased task function: call with a task index in `0..n`.
#[derive(Clone, Copy)]
struct TaskFn(*const (dyn Fn(usize) + Sync));

// SAFETY: sending the raw pointer between threads is sound because the
// pointee is `Sync` (callable from any thread through `&`) and the
// completion protocol in `run` guarantees it outlives every call.
unsafe impl Send for TaskFn {}
// SAFETY: shared references to `TaskFn` only expose the pointer for
// dereference in `Job::help`, whose access pattern is the `Sync` pointee's.
unsafe impl Sync for TaskFn {}

/// One published batch of tasks.
struct Job {
    task: TaskFn,
    /// Total number of task indices.
    n: usize,
    /// Diagnostic batch label (watchdog reports, fault-injection target).
    label: String,
    /// Executor cap, counting the caller.
    max_workers: usize,
    /// Executors currently inside the claim loop (caller included).
    active: AtomicUsize,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Completed task count; the job is done when this reaches `n`.
    done: AtomicUsize,
    /// Task indices claimed but not yet finished — what the watchdog
    /// reports when the batch stalls.
    inflight: Mutex<BTreeSet<usize>>,
    /// First panic payload from any task.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Job {
    /// Claims and executes tasks until none remain, then reports whether
    /// this executor finished the final task.
    fn help(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.n {
                return;
            }
            // SAFETY: idx < n, and `run` keeps the closure alive until
            // `done` reaches `n`, which cannot happen before this call
            // returns and is counted below.
            let task = unsafe { &*self.task.0 };
            let fault = sim_fault::on_task(&self.label, idx);
            self.inflight.lock().unwrap().insert(idx);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                match fault {
                    sim_fault::TaskFault::Panic => panic!(
                        "injected task fault: panic in task {idx} of batch {:?}",
                        self.label
                    ),
                    sim_fault::TaskFault::Stall(ms) => {
                        std::thread::sleep(Duration::from_millis(ms))
                    }
                    sim_fault::TaskFault::None => {}
                }
                task(idx)
            }));
            self.inflight.lock().unwrap().remove(&idx);
            if let Err(payload) = outcome {
                if !self.panicked.swap(true, Ordering::SeqCst) {
                    *self.panic.lock().unwrap() = Some(payload);
                }
            }
            if self.done.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
                let _guard = self.done_lock.lock().unwrap();
                self.done_cv.notify_all();
            }
        }
    }
}

/// The slot workers watch for new jobs.
struct Board {
    job: Option<(u64, Arc<Job>)>,
    generation: u64,
    shutdown: bool,
    /// Executors (workers + external callers) currently holding one of the
    /// pool's `cap` execution slots. Guarded by the board mutex so slot
    /// checks and `work_cv` waits share one lock — no lost wakeups.
    live: usize,
}

struct Shared {
    board: Mutex<Board>,
    work_cv: Condvar,
    /// Pool-wide executor budget: total threads concurrently executing
    /// tasks, counting every nesting depth exactly once per thread.
    cap: usize,
    /// Straggler-wait threshold in milliseconds before the watchdog
    /// reports in-flight tasks (`SIM_WATCHDOG_MS`, default 30 000).
    watchdog_ms: AtomicU64,
    /// Watchdog reports emitted so far (also mirrored to stderr).
    watchdog_log: Mutex<Vec<String>>,
}

impl Shared {
    /// Releases one execution slot and wakes anything waiting for it
    /// (budget-blocked workers and external callers both wait on `work_cv`).
    fn release_slot(&self) {
        let mut board = self.board.lock().unwrap();
        debug_assert!(board.live > 0, "slot released twice");
        board.live -= 1;
        drop(board);
        self.work_cv.notify_all();
    }
}

/// A pool of persistent worker threads executing indexed task batches.
///
/// See [`global`] for the process-wide instance most callers want.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` background threads. The calling thread
    /// participates in every [`run`](WorkerPool::run), so `workers: 0` is a
    /// valid (sequential) pool.
    ///
    /// The executor budget is `workers + 1` (all workers plus one caller may
    /// run at once), which never binds for a single caller — use
    /// [`WorkerPool::with_cap`] to bound total live executors below the
    /// thread count.
    pub fn new(workers: usize) -> Self {
        Self::with_cap(workers, workers + 1)
    }

    /// Creates a pool with `workers` background threads and a hard budget of
    /// `cap` concurrently *executing* threads (workers and external callers
    /// combined, nested [`run`](WorkerPool::run) depths counted once).
    ///
    /// The budget is what keeps stacked fan-out honest: an experiment
    /// submitting with `usize::MAX` concurrency whose tasks themselves call
    /// `run` on the same pool holds one slot per thread, not per nesting
    /// level, so total live executors never exceed `cap` no matter how the
    /// parallelism nests.
    pub fn with_cap(workers: usize, cap: usize) -> Self {
        assert!(cap >= 1, "executor budget must admit at least one thread");
        let shared = Arc::new(Shared {
            board: Mutex::new(Board {
                job: None,
                generation: 0,
                shutdown: false,
                live: 0,
            }),
            work_cv: Condvar::new(),
            cap,
            watchdog_ms: AtomicU64::new(default_watchdog_ms()),
            watchdog_log: Mutex::new(Vec::new()),
        });
        // A failed spawn (thread exhaustion, injected fault) degrades the
        // pool instead of aborting the run: the caller-helps protocol
        // completes every batch even with zero workers, just sequentially.
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = if sim_fault::on_spawn() {
                Err(std::io::Error::other("injected spawn failure"))
            } else {
                std::thread::Builder::new()
                    .name(format!("sim-pool-{i}"))
                    .spawn(move || worker_loop(&worker_shared))
            };
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    eprintln!(
                        "sim-pool: failed to spawn worker {i} of {workers}: {e}; \
                         continuing with {} worker(s) (the caller still participates)",
                        handles.len()
                    );
                    break;
                }
            }
        }
        WorkerPool { shared, handles }
    }

    /// Number of background worker threads (excluding callers).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The executor budget: maximum threads concurrently executing tasks.
    pub fn cap(&self) -> usize {
        self.shared.cap
    }

    /// Sets the straggler-wait watchdog threshold. Tests drive this down
    /// to observe reports quickly; the default comes from `SIM_WATCHDOG_MS`
    /// (30 000 ms when unset).
    pub fn set_watchdog_ms(&self, ms: u64) {
        self.shared.watchdog_ms.store(ms, Ordering::Relaxed);
    }

    /// Watchdog reports emitted by this pool so far (each names the batch
    /// label and the in-flight task indices at the time of the report).
    pub fn watchdog_reports(&self) -> Vec<String> {
        self.shared.watchdog_log.lock().unwrap().clone()
    }

    /// Executes `f(0..n)` across the pool and returns the results in index
    /// order. At most `max_workers` threads (counting the caller) execute
    /// concurrently; pass `usize::MAX` for no cap. Blocks until every task
    /// has completed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic from any task after the whole batch has
    /// drained (no task is abandoned mid-flight).
    pub fn run<R, F>(&self, n: usize, max_workers: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_labeled(n, max_workers, "", f)
    }

    /// [`run`](WorkerPool::run) with a diagnostic batch label: watchdog
    /// reports name it, and `sim_fault` task clauses (`panic@label`,
    /// `stall@label`) match against it.
    pub fn run_labeled<R, F>(&self, n: usize, max_workers: usize, label: &str, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        // Take an execution slot unless this thread already holds one of
        // this pool's slots (a worker executing a task that fans out again,
        // or a nested `run` on the caller's own stack). Acquiring *before*
        // publishing cannot deadlock: every slot holder makes progress
        // without waiting on us (`help` drains finite work, and nested
        // calls skip acquisition), so slots are always eventually released.
        let pool_id = Arc::as_ptr(&self.shared) as *const ();
        let nested = SLOT_OWNER.with(|s| s.get()) == pool_id;
        if !nested {
            let mut board = self.shared.board.lock().unwrap();
            while board.live >= self.shared.cap {
                board = self.shared.work_cv.wait(board).unwrap();
            }
            board.live += 1;
        }
        let prev_owner = SLOT_OWNER.with(|s| s.replace(pool_id));
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let task = |i: usize| {
            let value = f(i);
            *results[i].lock().unwrap() = Some(value);
        };
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: lifetime erasure only; the job is fully drained (and thus
        // no longer dereferencing this pointer) before `run` returns.
        let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };
        let job = Arc::new(Job {
            task: TaskFn(task_static as *const _),
            n,
            label: label.to_string(),
            max_workers: max_workers.max(1),
            active: AtomicUsize::new(1), // the caller
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            inflight: Mutex::new(BTreeSet::new()),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });

        // Publish, then help with the work ourselves.
        {
            let mut board = self.shared.board.lock().unwrap();
            board.generation += 1;
            board.job = Some((board.generation, Arc::clone(&job)));
            self.shared.work_cv.notify_all();
        }
        job.help();

        // Wait for stragglers still executing claimed tasks. A watchdog
        // tick reports which task indices are hung once the wait exceeds
        // the threshold (once per batch — this is a diagnostic, not a
        // timeout: the wait still lasts until the batch drains).
        {
            let threshold =
                Duration::from_millis(self.shared.watchdog_ms.load(Ordering::Relaxed).max(1));
            let waited_since = Instant::now();
            let mut reported = false;
            let mut guard = job.done_lock.lock().unwrap();
            while job.done.load(Ordering::SeqCst) < n {
                let (g, timeout) = job.done_cv.wait_timeout(guard, threshold).unwrap();
                guard = g;
                let done = job.done.load(Ordering::SeqCst);
                if timeout.timed_out() && !reported && done < n {
                    reported = true;
                    let stuck: Vec<usize> = job.inflight.lock().unwrap().iter().copied().collect();
                    let report = format!(
                        "pool watchdog: batch {:?}: {} of {n} task(s) outstanding after {:?}; \
                         hung task indices: {stuck:?}",
                        job.label,
                        n - done,
                        waited_since.elapsed()
                    );
                    eprintln!("sim-pool: {report}");
                    self.shared.watchdog_log.lock().unwrap().push(report);
                }
            }
        }
        SLOT_OWNER.with(|s| s.set(prev_owner));
        if !nested {
            self.shared.release_slot();
        }
        if job.panicked.load(Ordering::SeqCst) {
            if let Some(payload) = job.panic.lock().unwrap().take() {
                resume_unwind(payload);
            }
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("task completed without result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut board = self.shared.board.lock().unwrap();
            board.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let shared_id = shared as *const Shared as *const ();
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut board = shared.board.lock().unwrap();
            loop {
                if board.shutdown {
                    return;
                }
                match &board.job {
                    Some((generation, job)) if *generation != seen_generation => {
                        // A job is pending, but only join it if the pool's
                        // executor budget has a free slot; otherwise sleep
                        // until `release_slot` (or a new publish) wakes us.
                        if board.live < shared.cap {
                            let (generation, job) = (*generation, Arc::clone(job));
                            board.live += 1;
                            seen_generation = generation;
                            break job;
                        }
                        board = shared.work_cv.wait(board).unwrap();
                    }
                    _ => board = shared.work_cv.wait(board).unwrap(),
                }
            }
        };
        // Respect the job's executor cap (the caller counts as one).
        if job.active.fetch_add(1, Ordering::SeqCst) < job.max_workers {
            // Mark slot ownership so tasks that fan out again (nested
            // `run`) reuse this thread's slot instead of stacking another.
            SLOT_OWNER.with(|s| s.set(shared_id));
            job.help();
            SLOT_OWNER.with(|s| s.set(std::ptr::null()));
        }
        job.active.fetch_sub(1, Ordering::SeqCst);
        shared.release_slot();
    }
}

/// Initial watchdog threshold: `SIM_WATCHDOG_MS` or 30 s. Read once per
/// pool at construction; [`WorkerPool::set_watchdog_ms`] overrides later.
fn default_watchdog_ms() -> u64 {
    std::env::var("SIM_WATCHDOG_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000)
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool, created on first use with one worker per
/// available core (minus one for the calling thread) and an executor
/// budget of exactly `available_parallelism`: the workers plus one
/// external caller saturate the machine, and any further callers (or
/// nested fan-out) wait for a slot instead of oversubscribing it.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        WorkerPool::with_cap(cores.saturating_sub(1), cores)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let calls: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let out = pool.run(100, usize::MAX, |i| {
            calls[i].fetch_add(1, Ordering::SeqCst);
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert!(calls.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_tasks_and_zero_workers() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.run(0, usize::MAX, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(5, usize::MAX, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reused_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let out = pool.run(7, usize::MAX, |i| i + round);
            assert_eq!(out, (0..7).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn respects_worker_cap() {
        let pool = WorkerPool::new(8);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(64, 2, |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap of 2 exceeded");
    }

    #[test]
    fn nested_runs_complete() {
        let pool = WorkerPool::new(2);
        let out = pool.run(4, usize::MAX, |i| {
            let inner = pool.run(3, usize::MAX, |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        assert_eq!(out, vec![1 + 2, 30 + 3, 60 + 3, 90 + 3]);
    }

    #[test]
    fn propagates_panics_after_drain() {
        let pool = WorkerPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let result = {
            let completed = Arc::clone(&completed);
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(16, usize::MAX, |i| {
                    if i == 5 {
                        panic!("task 5 exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                })
            }))
        };
        assert!(result.is_err());
        assert_eq!(
            completed.load(Ordering::SeqCst),
            15,
            "all other tasks still ran"
        );
        // The pool survives the panic and keeps working.
        assert_eq!(pool.run(3, usize::MAX, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn many_threads_observe_distinct_indices() {
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(HashSet::new());
        pool.run(200, usize::MAX, |i| {
            assert!(seen.lock().unwrap().insert(i), "index {i} claimed twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 200);
    }

    #[test]
    fn budget_caps_concurrent_executors() {
        // 8 workers but a budget of 2: no matter how wide the job, at most
        // two threads (caller included) execute tasks at any instant.
        let pool = WorkerPool::with_cap(8, 2);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(64, usize::MAX, |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget of 2 exceeded");
    }

    #[test]
    fn nested_fanout_stays_within_budget() {
        // Outer tasks fan out again on the same pool (the runner →
        // replay_many shape). Each thread holds one slot across all
        // nesting depths, so inner-task concurrency stays within the
        // budget instead of stacking outer × inner.
        let pool = WorkerPool::with_cap(8, 3);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = pool.run(6, usize::MAX, |i| {
            pool.run(6, usize::MAX, |j| {
                let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                concurrent.fetch_sub(1, Ordering::SeqCst);
                i * 10 + j
            })
            .into_iter()
            .sum::<usize>()
        });
        assert_eq!(out.len(), 6);
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "nested fan-out exceeded budget: peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn external_callers_share_budget() {
        // Three independent caller threads hammer one budget-2 pool; the
        // third always waits for a slot rather than oversubscribing.
        let pool = Arc::new(WorkerPool::with_cap(4, 2));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            let concurrent = Arc::clone(&concurrent);
            let peak = Arc::clone(&peak);
            joins.push(std::thread::spawn(move || {
                pool.run(8, usize::MAX, |_| {
                    let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    concurrent.fetch_sub(1, Ordering::SeqCst);
                });
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget of 2 exceeded");
    }

    #[test]
    fn default_budget_never_binds() {
        // `new(w)` keeps the historical behaviour: all workers plus the
        // caller may run at once.
        let pool = WorkerPool::new(3);
        assert_eq!(pool.cap(), 4);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run(32, usize::MAX, |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 4);
    }

    #[test]
    fn global_pool_budget_is_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        assert_eq!(global().cap(), cores);
        assert_eq!(global().workers(), cores.saturating_sub(1));
    }

    #[test]
    fn injected_spawn_failure_degrades_worker_count() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        // The 3rd spawn fails: the pool keeps the 2 workers it got and
        // still completes batches.
        sim_fault::with_plan("spawn-fail:n=3:sticky", || {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.workers(), 2, "degraded to the workers that spawned");
            assert_eq!(
                pool.run(9, usize::MAX, |i| i * 3),
                (0..9).map(|i| i * 3).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn injected_spawn_failure_falls_back_to_sequential() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        sim_fault::with_plan("spawn-fail:sticky", || {
            let pool = WorkerPool::new(3);
            assert_eq!(pool.workers(), 0, "every spawn failed");
            // Zero workers: the caller-helps protocol runs the batch
            // sequentially rather than deadlocking or aborting.
            assert_eq!(pool.run(5, usize::MAX, |i| i + 1), vec![1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn injected_task_panic_follows_panic_protocol() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        sim_fault::with_plan("panic@fitness:task=3", || {
            let pool = WorkerPool::new(2);
            let completed = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run_labeled(8, usize::MAX, "fitness-gen0", |_| {
                    completed.fetch_add(1, Ordering::SeqCst);
                })
            }));
            assert!(result.is_err(), "injected panic must surface to the caller");
            assert_eq!(completed.load(Ordering::SeqCst), 7, "other tasks drained");
            // The pool survives, and unlabeled batches are untouched by the
            // label-filtered clause.
            assert_eq!(pool.run(3, usize::MAX, |i| i), vec![0, 1, 2]);
        });
    }

    #[test]
    fn watchdog_reports_hung_task_under_injected_stall() {
        if !sim_fault::COMPILED_IN {
            return;
        }
        // Task 3 of each "replay" batch stalls well past the watchdog
        // threshold. The non-stalled tasks sleep briefly so the workers
        // (already parked on the condvar) claim the tail of the batch and
        // the caller reaches the straggler wait; if the caller happens to
        // claim the stalled task itself there is no one left to watch, so
        // retry — the sticky clause stalls task 3 of every round.
        sim_fault::with_plan("stall@replay:task=3:ms=150:sticky", || {
            let pool = WorkerPool::new(3);
            pool.set_watchdog_ms(20);
            for _round in 0..10 {
                let out = pool.run_labeled(4, usize::MAX, "replay-batch", |i| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    i
                });
                assert_eq!(out, vec![0, 1, 2, 3], "stalled batch still completes");
                if !pool.watchdog_reports().is_empty() {
                    break;
                }
            }
            let reports = pool.watchdog_reports();
            assert!(
                !reports.is_empty(),
                "watchdog never fired across 10 stalled rounds"
            );
            assert!(
                reports[0].contains("replay-batch") && reports[0].contains("[3]"),
                "report must name the batch and the hung task: {:?}",
                reports[0]
            );
        });
    }

    #[test]
    fn global_pool_is_reused() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        let sum: u64 = global()
            .run(32, usize::MAX, |i| {
                static TOUCHED: AtomicU64 = AtomicU64::new(0);
                TOUCHED.fetch_add(1, Ordering::Relaxed);
                i as u64
            })
            .into_iter()
            .sum();
        assert_eq!(sum, (0..32).sum::<u64>());
    }
}
