//! Memory-reference types shared by all cache levels.

use std::fmt;

/// Whether a reference reads or writes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessKind {
    /// A demand load (or instruction fetch).
    #[default]
    Read,
    /// A demand store.
    Write,
    /// A writeback arriving from the level above.
    Writeback,
}

/// One memory reference as issued by the core.
///
/// `icount_delta` is the number of instructions retired since the previous
/// memory reference; it lets trace consumers reconstruct instruction counts
/// (for MPKI) and approximate timing without storing absolute counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address referenced.
    pub addr: u64,
    /// Program counter of the memory instruction (used by PC-indexed
    /// policies such as SHiP).
    pub pc: u64,
    /// Read/write/writeback discriminator.
    pub kind: AccessKind,
    /// Instructions retired since the previous access in the stream.
    pub icount_delta: u32,
}

impl Access {
    /// Creates a read access with no preceding non-memory instructions.
    pub fn read(addr: u64, pc: u64) -> Self {
        Access {
            addr,
            pc,
            kind: AccessKind::Read,
            icount_delta: 1,
        }
    }

    /// Creates a write access with no preceding non-memory instructions.
    pub fn write(addr: u64, pc: u64) -> Self {
        Access {
            addr,
            pc,
            kind: AccessKind::Write,
            icount_delta: 1,
        }
    }

    /// Sets the instruction gap since the previous access.
    pub fn with_icount_delta(mut self, delta: u32) -> Self {
        self.icount_delta = delta;
        self
    }

    /// Returns true for stores and writebacks.
    pub fn is_write(&self) -> bool {
        !matches!(self.kind, AccessKind::Read)
    }

    /// Extracts the policy-visible portion of this access.
    #[inline]
    pub fn context(&self) -> AccessContext {
        AccessContext {
            pc: self.pc,
            addr: self.addr,
            is_write: self.is_write(),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
            AccessKind::Writeback => "WB",
        };
        write!(
            f,
            "{k} {:#x} (pc {:#x}, +{} instr)",
            self.addr, self.pc, self.icount_delta
        )
    }
}

/// The subset of an [`Access`] that replacement policies may observe.
///
/// GIPPR/DGIPPR use none of it (the paper's point: no information beyond the
/// address stream), but baselines like SHiP need the PC and PDP distinguishes
/// reads from writes when sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessContext {
    /// Program counter of the memory instruction.
    pub pc: u64,
    /// Byte address referenced.
    pub addr: u64,
    /// True for stores and writebacks.
    pub is_write: bool,
}

impl AccessContext {
    /// A context carrying no information, for policies that ignore it.
    pub fn blank() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kind() {
        let r = Access::read(0x1000, 0x40);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.is_write());
        let w = Access::write(0x2000, 0x44);
        assert!(w.is_write());
    }

    #[test]
    fn icount_delta_builder() {
        let a = Access::read(0, 0).with_icount_delta(17);
        assert_eq!(a.icount_delta, 17);
    }

    #[test]
    fn context_projection() {
        let w = Access::write(0xabc0, 0x999);
        let c = w.context();
        assert_eq!(c.addr, 0xabc0);
        assert_eq!(c.pc, 0x999);
        assert!(c.is_write);
    }

    #[test]
    fn writeback_is_write() {
        let mut a = Access::read(0, 0);
        a.kind = AccessKind::Writeback;
        assert!(a.is_write());
        assert!(a.to_string().starts_with("WB"));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Access::read(0x40, 0).to_string().is_empty());
    }
}
