//! Property-based tests for the baseline policies: structural invariants
//! that must hold for any access sequence.

use baselines::{
    DipPolicy, DrripPolicy, FifoPolicy, PdpPolicy, RandomPolicy, RripIpvPolicy, SdbpPolicy,
    ShipPolicy, SrripPolicy, TrueLru,
};
use proptest::prelude::*;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, SetAssocCache};

fn geom() -> CacheGeometry {
    CacheGeometry::from_sets(128, 8, 64).unwrap()
}

fn all_policies(g: &CacheGeometry) -> Vec<Box<dyn ReplacementPolicy>> {
    vec![
        Box::new(TrueLru::new(g)),
        Box::new(RandomPolicy::with_seed(g, 99)),
        Box::new(FifoPolicy::new(g)),
        Box::new(DipPolicy::with_config(g, 8, 10).unwrap()),
        Box::new(SrripPolicy::new(g)),
        Box::new(DrripPolicy::with_config(g, 8, 10).unwrap()),
        Box::new(PdpPolicy::new(g)),
        Box::new(ShipPolicy::new(g)),
        Box::new(SdbpPolicy::new(g)),
        Box::new(RripIpvPolicy::new(g, [0, 0, 1, 2, 3]).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every policy's victim is always a legal way, caches never duplicate
    /// tags, and a just-accessed block is always resident afterwards
    /// (none of our policies bypass except opt-in DGIPPR).
    #[test]
    fn structural_invariants_hold_for_every_policy(
        accesses in proptest::collection::vec((0u64..4096, 0u64..64, proptest::bool::ANY), 200..600),
    ) {
        let g = geom();
        for policy in all_policies(&g) {
            let name = policy.name().to_string();
            let mut cache = SetAssocCache::new(g, policy);
            for &(blk, pcidx, is_write) in &accesses {
                let ctx = AccessContext {
                    pc: 0x400 + pcidx * 4,
                    addr: blk * 64,
                    is_write,
                };
                let out = cache.access_block(blk, &ctx);
                prop_assert!(!out.bypassed, "{name} never bypasses");
                prop_assert!(cache.probe(blk), "{name}: accessed block resident");
                let set = g.set_of_block(blk);
                let resident = cache.resident_blocks(set);
                let mut dedup = resident.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), resident.len(), "{} duplicates a tag", name);
            }
        }
    }

    /// Hits + misses always equals accesses, and evictions never exceed
    /// misses, for every policy.
    #[test]
    fn counter_identities(
        blocks in proptest::collection::vec(0u64..2048, 100..400),
    ) {
        let g = geom();
        for policy in all_policies(&g) {
            let mut cache = SetAssocCache::new(g, policy);
            for &blk in &blocks {
                cache.access_block(blk, &AccessContext::blank());
            }
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!(s.evictions <= s.misses);
            prop_assert!(s.writebacks <= s.evictions);
        }
    }

    /// Replaying the same access sequence twice on fresh caches yields
    /// identical statistics for every policy (determinism — including the
    /// seeded Random policy and the tick-based BIP/BRRIP).
    #[test]
    fn policies_are_deterministic(
        blocks in proptest::collection::vec(0u64..1024, 100..300),
    ) {
        let g = geom();
        let run = |policy: Box<dyn ReplacementPolicy>| {
            let mut cache = SetAssocCache::new(g, policy);
            for &blk in &blocks {
                cache.access_block(blk, &AccessContext::blank());
            }
            *cache.stats()
        };
        for (a, b) in all_policies(&g).into_iter().zip(all_policies(&g)) {
            let name = a.name().to_string();
            prop_assert_eq!(run(a), run(b), "{} nondeterministic", name);
        }
    }

    /// Single-set workloads never touch other sets' state: two disjoint
    /// set-local streams produce the same per-set results run together or
    /// separately (set isolation; dueling policies are cache-global so
    /// they are exempt).
    #[test]
    fn set_isolation_for_per_set_policies(
        s0 in proptest::collection::vec(0u64..32, 50..150),
        s1 in proptest::collection::vec(0u64..32, 50..150),
    ) {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        // blocks for set 0: even block numbers; set 1: odd.
        let to_set0 = |b: u64| b * 2;
        let to_set1 = |b: u64| b * 2 + 1;
        let per_set_policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(TrueLru::new(&g)),
            Box::new(FifoPolicy::new(&g)),
            Box::new(SrripPolicy::new(&g)),
        ];
        for policy in per_set_policies {
            let name = policy.name().to_string();
            // Combined run.
            let mut combined = SetAssocCache::new(g, policy);
            for (a, b) in s0.iter().zip(&s1) {
                combined.access_block(to_set0(*a), &AccessContext::blank());
                combined.access_block(to_set1(*b), &AccessContext::blank());
            }
            // Solo run of set 0's stream only.
            let solo_policy: Box<dyn ReplacementPolicy> = match name.as_str() {
                "LRU" => Box::new(TrueLru::new(&g)),
                "FIFO" => Box::new(FifoPolicy::new(&g)),
                _ => Box::new(SrripPolicy::new(&g)),
            };
            let mut solo = SetAssocCache::new(g, solo_policy);
            let mut solo_misses = 0u64;
            for a in &s0 {
                if !solo.access_block(to_set0(*a), &AccessContext::blank()).hit {
                    solo_misses += 1;
                }
            }
            // Set-0 misses in the combined run must match the solo run.
            let mut combined_set0_misses = 0u64;
            let reference: Vec<u64> = s0.iter().map(|a| to_set0(*a)).collect();
            let mut fresh: Box<dyn ReplacementPolicy> = match name.as_str() {
                "LRU" => Box::new(TrueLru::new(&g)),
                "FIFO" => Box::new(FifoPolicy::new(&g)),
                _ => Box::new(SrripPolicy::new(&g)),
            };
            let _ = &mut fresh;
            let mut recheck = SetAssocCache::new(g, fresh);
            for blk in &reference {
                if !recheck.access_block(*blk, &AccessContext::blank()).hit {
                    combined_set0_misses += 1;
                }
            }
            prop_assert_eq!(combined_set0_misses, solo_misses, "{} set isolation", name);
        }
    }
}
