//! Property-based tests for the baseline policies: structural invariants
//! that must hold for any access sequence.

use baselines::{
    ArcPolicy, AwrpPolicy, DipPolicy, DrripPolicy, FifoPolicy, PdpPolicy, RandomPolicy,
    RripIpvPolicy, SdbpPolicy, ShipPolicy, SrripPolicy, TrueLru,
};
use proptest::prelude::*;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, SetAssocCache};

fn geom() -> CacheGeometry {
    CacheGeometry::from_sets(128, 8, 64).unwrap()
}

fn all_policies(g: &CacheGeometry) -> Vec<Box<dyn ReplacementPolicy>> {
    vec![
        Box::new(TrueLru::new(g)),
        Box::new(RandomPolicy::with_seed(g, 99)),
        Box::new(FifoPolicy::new(g)),
        Box::new(DipPolicy::with_config(g, 8, 10).unwrap()),
        Box::new(SrripPolicy::new(g)),
        Box::new(DrripPolicy::with_config(g, 8, 10).unwrap()),
        Box::new(PdpPolicy::new(g)),
        Box::new(ShipPolicy::new(g)),
        Box::new(SdbpPolicy::new(g)),
        Box::new(RripIpvPolicy::new(g, [0, 0, 1, 2, 3]).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every policy's victim is always a legal way, caches never duplicate
    /// tags, and a just-accessed block is always resident afterwards
    /// (none of our policies bypass except opt-in DGIPPR).
    #[test]
    fn structural_invariants_hold_for_every_policy(
        accesses in proptest::collection::vec((0u64..4096, 0u64..64, proptest::bool::ANY), 200..600),
    ) {
        let g = geom();
        for policy in all_policies(&g) {
            let name = policy.name().to_string();
            let mut cache = SetAssocCache::new(g, policy);
            for &(blk, pcidx, is_write) in &accesses {
                let ctx = AccessContext {
                    pc: 0x400 + pcidx * 4,
                    addr: blk * 64,
                    is_write,
                };
                let out = cache.access_block(blk, &ctx);
                prop_assert!(!out.bypassed, "{name} never bypasses");
                prop_assert!(cache.probe(blk), "{name}: accessed block resident");
                let set = g.set_of_block(blk);
                let resident = cache.resident_blocks(set);
                let mut dedup = resident.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), resident.len(), "{} duplicates a tag", name);
            }
        }
    }

    /// Hits + misses always equals accesses, and evictions never exceed
    /// misses, for every policy.
    #[test]
    fn counter_identities(
        blocks in proptest::collection::vec(0u64..2048, 100..400),
    ) {
        let g = geom();
        for policy in all_policies(&g) {
            let mut cache = SetAssocCache::new(g, policy);
            for &blk in &blocks {
                cache.access_block(blk, &AccessContext::blank());
            }
            let s = cache.stats();
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert!(s.evictions <= s.misses);
            prop_assert!(s.writebacks <= s.evictions);
        }
    }

    /// Replaying the same access sequence twice on fresh caches yields
    /// identical statistics for every policy (determinism — including the
    /// seeded Random policy and the tick-based BIP/BRRIP).
    #[test]
    fn policies_are_deterministic(
        blocks in proptest::collection::vec(0u64..1024, 100..300),
    ) {
        let g = geom();
        let run = |policy: Box<dyn ReplacementPolicy>| {
            let mut cache = SetAssocCache::new(g, policy);
            for &blk in &blocks {
                cache.access_block(blk, &AccessContext::blank());
            }
            *cache.stats()
        };
        for (a, b) in all_policies(&g).into_iter().zip(all_policies(&g)) {
            let name = a.name().to_string();
            prop_assert_eq!(run(a), run(b), "{} nondeterministic", name);
        }
    }

    /// Single-set workloads never touch other sets' state: two disjoint
    /// set-local streams produce the same per-set results run together or
    /// separately (set isolation; dueling policies are cache-global so
    /// they are exempt).
    #[test]
    fn set_isolation_for_per_set_policies(
        s0 in proptest::collection::vec(0u64..32, 50..150),
        s1 in proptest::collection::vec(0u64..32, 50..150),
    ) {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        // blocks for set 0: even block numbers; set 1: odd.
        let to_set0 = |b: u64| b * 2;
        let to_set1 = |b: u64| b * 2 + 1;
        let per_set_policies: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(TrueLru::new(&g)),
            Box::new(FifoPolicy::new(&g)),
            Box::new(SrripPolicy::new(&g)),
        ];
        for policy in per_set_policies {
            let name = policy.name().to_string();
            // Combined run.
            let mut combined = SetAssocCache::new(g, policy);
            for (a, b) in s0.iter().zip(&s1) {
                combined.access_block(to_set0(*a), &AccessContext::blank());
                combined.access_block(to_set1(*b), &AccessContext::blank());
            }
            // Solo run of set 0's stream only.
            let solo_policy: Box<dyn ReplacementPolicy> = match name.as_str() {
                "LRU" => Box::new(TrueLru::new(&g)),
                "FIFO" => Box::new(FifoPolicy::new(&g)),
                _ => Box::new(SrripPolicy::new(&g)),
            };
            let mut solo = SetAssocCache::new(g, solo_policy);
            let mut solo_misses = 0u64;
            for a in &s0 {
                if !solo.access_block(to_set0(*a), &AccessContext::blank()).hit {
                    solo_misses += 1;
                }
            }
            // Set-0 misses in the combined run must match the solo run.
            let mut combined_set0_misses = 0u64;
            let reference: Vec<u64> = s0.iter().map(|a| to_set0(*a)).collect();
            let mut fresh: Box<dyn ReplacementPolicy> = match name.as_str() {
                "LRU" => Box::new(TrueLru::new(&g)),
                "FIFO" => Box::new(FifoPolicy::new(&g)),
                _ => Box::new(SrripPolicy::new(&g)),
            };
            let _ = &mut fresh;
            let mut recheck = SetAssocCache::new(g, fresh);
            for blk in &reference {
                if !recheck.access_block(*blk, &AccessContext::blank()).hit {
                    combined_set0_misses += 1;
                }
            }
            prop_assert_eq!(combined_set0_misses, solo_misses, "{} set isolation", name);
        }
    }

    /// AWRP's per-set clocks only ever feed modular age differences, so
    /// behaviour must be origin-independent — including across the `u64`
    /// wrap. Replaying any stream against an origin-0 twin and a twin whose
    /// clocks start just below `u64::MAX` (guaranteed to wrap mid-stream)
    /// must produce identical outcomes, rebased set digests, and clean
    /// alignment invariants throughout.
    #[test]
    fn awrp_clock_wraparound_is_invisible(
        blocks in proptest::collection::vec(0u64..64, 100..400),
        headroom in 0u64..2048,
    ) {
        let g = CacheGeometry::from_sets(4, 4, 64).unwrap();
        // The stream ticks each set's clock by `ways` per touch; starting
        // `headroom` ticks shy of the wrap puts the crossing at a
        // proptest-chosen point inside the stream.
        let origin = u64::MAX - headroom;
        let mut base = SetAssocCache::with_policy(g, AwrpPolicy::new(&g));
        let mut wrapped = SetAssocCache::with_policy(g, AwrpPolicy::with_clock_origin(&g, origin));
        for &blk in &blocks {
            let a = base.access_block(blk, &AccessContext::blank());
            let b = wrapped.access_block(blk, &AccessContext::blank());
            prop_assert_eq!(a, b, "outcome diverged at block {}", blk);
            prop_assert!(wrapped.policy().audit_invariants().is_ok());
            for set in 0..g.sets() {
                prop_assert_eq!(
                    base.policy().audit_set_digest(set),
                    wrapped.policy().audit_set_digest(set),
                    "set {} digest diverged across the clock wrap", set
                );
            }
        }
    }

    /// ARC's defining move is the ghost hit: re-referencing a block that is
    /// still the most recent eviction from its set is *guaranteed* to find
    /// its ghost entry, must miss (ghosts hold no data), and must keep the
    /// T1 target inside `0..=ways` and both ghost lists within capacity at
    /// every step. A deterministic prelude forces one B1 ghost hit so the
    /// adaptation path is exercised on every case, then a random tail
    /// stresses the invariants.
    #[test]
    fn arc_ghost_hit_after_eviction_adapts_within_bounds(
        blocks in proptest::collection::vec(0u64..24, 200..500),
    ) {
        let g = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let mut cache = SetAssocCache::with_policy(g, ArcPolicy::new(&g));
        // Blocks 0, 2, 4 share set 0: fill two ways, evict block 0 into
        // the B1 ghost list, then re-reference it. With an empty B2 the
        // adaptation step is exactly one way's worth, so the T1 target
        // must land on 1.
        let mut last_evicted = vec![None; g.sets()];
        let mut ghost_rerefs = 0u64;
        for &blk in [0u64, 2, 4, 0].iter().chain(&blocks) {
            let set = g.set_of_block(blk);
            let ghost_guaranteed = last_evicted[set] == Some(blk);
            let out = cache.access_block(blk, &AccessContext::blank());
            if ghost_guaranteed {
                // Most recent eviction from this set: its ghost entry is
                // still at the MRU end of B1 or B2, and ghosts are never
                // resident.
                ghost_rerefs += 1;
                prop_assert!(!out.hit, "ghost block {} served a hit", blk);
            }
            if let Some(e) = out.evicted {
                last_evicted[set] = Some(e.block_addr);
            }
            prop_assert!(cache.policy().audit_invariants().is_ok());
            let target = cache.policy().t1_target();
            prop_assert!(target <= g.ways() as u64, "T1 target {} above ways", target);
        }
        prop_assert!(ghost_rerefs > 0, "the prelude guarantees one ghost re-reference");
        // Replaying the identical stream must reproduce the exact final
        // state — ghost adaptation is deterministic.
        let mut replay = SetAssocCache::with_policy(g, ArcPolicy::new(&g));
        for &blk in [0u64, 2, 4, 0].iter().chain(&blocks) {
            replay.access_block(blk, &AccessContext::blank());
        }
        prop_assert_eq!(
            replay.policy().audit_global_digest(),
            cache.policy().audit_global_digest()
        );
        for set in 0..g.sets() {
            prop_assert_eq!(
                replay.policy().audit_set_digest(set),
                cache.policy().audit_set_digest(set),
                "set {} state failed to replay", set
            );
        }
    }

}

/// The prelude from the invariant proptest, in isolation: one forced B1
/// ghost hit with an empty B2 adapts the T1 target from 0 to exactly 1.
#[test]
fn arc_b1_ghost_hit_grows_target_by_one_step() {
    let g = CacheGeometry::from_sets(2, 2, 64).unwrap();
    let mut cache = SetAssocCache::with_policy(g, baselines::ArcPolicy::new(&g));
    for &blk in &[0u64, 2, 4] {
        cache.access_block(blk, &AccessContext::blank());
    }
    assert_eq!(cache.policy().t1_target(), 0);
    let out = cache.access_block(0, &AccessContext::blank());
    assert!(!out.hit, "evicted block must miss");
    assert_eq!(
        cache.policy().t1_target(),
        1,
        "B1 ghost hit grows p by one way"
    );
}
