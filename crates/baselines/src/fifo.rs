//! First-in-first-out replacement.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// FIFO: evict the block that was *filled* longest ago, ignoring hits.
///
/// One of the classic policies "known for over 45 years" (Denning); kept as
/// an ablation baseline to separate the value of recency tracking (LRU vs.
/// FIFO) from the value of insertion/promotion flexibility (GIPPR vs.
/// PLRU). Cost: a `log2 k`-bit round-robin pointer per set.
#[derive(Debug, Clone)]
pub struct FifoPolicy {
    ways: usize,
    next: Vec<u8>,
}

impl FifoPolicy {
    /// Creates a FIFO policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        FifoPolicy {
            ways: geom.ways(),
            next: vec![0; geom.sets()],
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        usize::from(self.next[set])
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        // Advance the pointer only when the fill consumed the pointed-to
        // way (cold fills into invalid ways land in way order and keep the
        // FIFO order intact).
        if usize::from(self.next[set]) == way {
            self.next[set] = ((way + 1) % self.ways) as u8;
        }
    }

    fn bits_per_set(&self) -> u64 {
        u64::from(self.ways.trailing_zeros())
    }

    // All state is the per-set `next` pointer.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(vec![self.next[set]])
    }

    fn audit_invariants(&self) -> Result<(), String> {
        match self.next.iter().position(|&n| usize::from(n) >= self.ways) {
            Some(set) => Err(format!(
                "FIFO pointer {} in set {set} is out of range (ways = {})",
                self.next[set], self.ways
            )),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    #[test]
    fn evicts_in_fill_order_despite_hits() {
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut c = SetAssocCache::new(g, Box::new(FifoPolicy::new(&g)));
        let ctx = AccessContext::blank();
        for blk in 0..4u64 {
            c.access_block(blk, &ctx);
        }
        c.access_block(0, &ctx); // hit must not refresh FIFO order
        let out = c.access_block(10, &ctx);
        assert_eq!(out.evicted.unwrap().block_addr, 0);
        let out = c.access_block(11, &ctx);
        assert_eq!(out.evicted.unwrap().block_addr, 1);
    }

    #[test]
    fn pointer_wraps_around() {
        let g = CacheGeometry::from_sets(1, 2, 64).unwrap();
        let mut c = SetAssocCache::new(g, Box::new(FifoPolicy::new(&g)));
        let ctx = AccessContext::blank();
        for blk in 0..6u64 {
            c.access_block(blk, &ctx);
        }
        // Blocks 4 and 5 resident now.
        assert!(c.probe(4));
        assert!(c.probe(5));
    }

    #[test]
    fn pointer_cost() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        assert_eq!(FifoPolicy::new(&g).bits_per_set(), 4);
    }
}
