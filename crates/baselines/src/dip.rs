//! DIP: Dynamic Insertion Policy (Qureshi et al., ISCA 2007).

use gippr::RecencyStack;
use sim_core::dueling::{DuelController, DuelingError};
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// Probability denominator for BIP's occasional MRU insertion (1/32).
const BIP_EPSILON: u64 = 32;

/// DIP: set-dueling between traditional MRU insertion (classic LRU) and
/// *bimodal* insertion (BIP: insert at the LRU position except for a 1/32
/// chance of MRU insertion), on full true-LRU recency stacks.
///
/// DIP is the intellectual ancestor of DGIPPR's adaptivity: the paper notes
/// the WI-2-DGIPPR vector pair "clearly duel between PLRU and PMRU
/// insertion, just as DIP would do". It pays full LRU cost (`k log2 k`
/// bits per set) plus a 10-bit PSEL counter.
#[derive(Debug, Clone)]
pub struct DipPolicy {
    stacks: Vec<RecencyStack>,
    duel: DuelController,
    ways: usize,
    bip_tick: u64,
}

impl DipPolicy {
    /// Creates DIP with 32 leader sets per policy and a 10-bit PSEL.
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] if the geometry cannot host the leader
    /// layout.
    pub fn new(geom: &CacheGeometry) -> Result<Self, DuelingError> {
        Self::with_config(geom, 32, 10)
    }

    /// Fully configurable constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] if the geometry cannot host the leader
    /// layout.
    pub fn with_config(
        geom: &CacheGeometry,
        leaders_per_policy: usize,
        psel_bits: u32,
    ) -> Result<Self, DuelingError> {
        Ok(DipPolicy {
            stacks: vec![RecencyStack::new(geom.ways()); geom.sets()],
            duel: DuelController::two(geom.sets(), leaders_per_policy, psel_bits)?,
            ways: geom.ways(),
            bip_tick: 0,
        })
    }

    /// Which insertion policy (0 = LRU/MRU-insert, 1 = BIP) followers use.
    pub fn winner(&self) -> usize {
        self.duel.winner()
    }
}

impl ReplacementPolicy for DipPolicy {
    fn name(&self) -> &str {
        "DIP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.stacks[set].lru_way()
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.stacks[set].move_to(way, 0);
    }

    fn on_miss(&mut self, set: usize, _ctx: &AccessContext) {
        self.duel.record_miss(set);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let policy = self.duel.policy_for_set(set);
        let target = if policy == 0 {
            0 // traditional MRU insertion
        } else {
            // BIP: LRU-position insertion with an occasional MRU insertion.
            self.bip_tick += 1;
            if self.bip_tick % BIP_EPSILON == 0 {
                0
            } else {
                self.ways - 1
            }
        };
        self.stacks[set].move_to(way, target);
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.ways)
    }

    fn global_bits(&self) -> u64 {
        self.duel.counter_bits()
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.stacks[set].positions().to_vec())
    }

    // BIP's tick only matters modulo the bimodal epsilon.
    fn audit_global_digest(&self) -> Vec<u8> {
        let mut d = self.duel.audit_digest();
        d.extend_from_slice(&(self.bip_tick % BIP_EPSILON).to_le_bytes());
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        match self.stacks.iter().position(|s| !s.is_permutation()) {
            Some(set) => Err(format!(
                "DIP recency stack in set {set} is no longer a permutation"
            )),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::dueling::SetRole;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(1024, 16, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn lru_leaders_insert_at_mru() {
        let g = geom();
        let mut p = DipPolicy::new(&g).unwrap();
        let map = *p.duel.leader_map();
        let lru_leader = (0..g.sets())
            .find(|&s| map.role(s) == SetRole::Leader(0))
            .unwrap();
        p.on_fill(lru_leader, 7, &ctx());
        assert_eq!(p.stacks[lru_leader].position(7), 0);
    }

    #[test]
    fn bip_leaders_mostly_insert_at_lru() {
        let g = geom();
        let mut p = DipPolicy::new(&g).unwrap();
        let map = *p.duel.leader_map();
        let bip_leader = (0..g.sets())
            .find(|&s| map.role(s) == SetRole::Leader(1))
            .unwrap();
        let mut lru_inserts = 0;
        for i in 0..320 {
            p.on_fill(bip_leader, i % 16, &ctx());
            if p.stacks[bip_leader].position(i % 16) == 15 {
                lru_inserts += 1;
            }
        }
        assert!(
            lru_inserts >= 300,
            "roughly 31/32 of BIP fills go to LRU, got {lru_inserts}"
        );
        assert!(lru_inserts < 320, "but not all of them");
    }

    #[test]
    fn duel_converges_to_less_missing_policy() {
        let g = geom();
        let mut p = DipPolicy::new(&g).unwrap();
        let map = *p.duel.leader_map();
        for _ in 0..200 {
            for s in 0..g.sets() {
                if map.role(s) == SetRole::Leader(0) {
                    p.on_miss(s, &ctx());
                }
            }
        }
        assert_eq!(
            p.winner(),
            1,
            "policy 0's leaders missing more flips followers to BIP"
        );
    }

    #[test]
    fn storage_cost() {
        let p = DipPolicy::new(&geom()).unwrap();
        assert_eq!(p.bits_per_set(), 64, "DIP pays full LRU cost");
        assert_eq!(p.global_bits(), 10);
    }
}
