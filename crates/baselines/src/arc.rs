//! ARC-style adaptive replacement (Megiddo & Modha, FAST 2003; analysed
//! in arXiv 1503.07624).
//!
//! ARC splits each set's residents into a recency list T1 (touched
//! once since fill) and a frequency list T2 (touched again), shadowed
//! by ghost lists B1/B2 remembering recently evicted block addresses
//! from each side. A ghost hit is evidence the corresponding list was
//! sized too small, and nudges a single adaptation target `p` — the
//! desired T1 share — which the victim rule then chases: evict from T1
//! while it exceeds `p` ways, from T2 otherwise. The original operates
//! on a fully-associative store; this baseline scopes the lists per set
//! (capacity = associativity) and keeps `p` cache-global, which is what
//! makes it [`ShardAffinity::Global`]: ghost hits in any set move the
//! target every other set duels against.

#![forbid(unsafe_code)]

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// Fixed-point scale for the adaptation target `p` (per-set T1 ways).
const P_SCALE: u64 = 16;

/// Which resident list a line is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum List {
    T1,
    T2,
}

/// Per-set ARC state: the two resident lists (way indices, MRU first)
/// and the two ghost lists (block addresses, MRU first, capped at
/// `ways`).
#[derive(Debug, Clone, Default)]
struct SetLists {
    t1: Vec<usize>,
    t2: Vec<usize>,
    b1: Vec<u64>,
    b2: Vec<u64>,
}

impl SetLists {
    fn drop_way(&mut self, way: usize) -> Option<List> {
        if let Some(i) = self.t1.iter().position(|&w| w == way) {
            self.t1.remove(i);
            return Some(List::T1);
        }
        if let Some(i) = self.t2.iter().position(|&w| w == way) {
            self.t2.remove(i);
            return Some(List::T2);
        }
        None
    }
}

/// ARC with per-set lists and one global adaptation target.
///
/// The policy keeps its own copy of each line's block address (written
/// in `on_fill` from the access context) because the eviction callback
/// only names the way, and the ghost lists need the address.
#[derive(Debug, Clone)]
pub struct ArcPolicy {
    geom: CacheGeometry,
    ways: usize,
    lists: Vec<SetLists>,
    blocks: Vec<u64>,
    /// T1 target in [`P_SCALE`]-ths of a way, in `0..=ways * P_SCALE`.
    p: u64,
    /// Set in `on_miss` on a ghost hit; routes the following fill to T2.
    fill_to_t2: bool,
    /// Seeded-defect switch: skip the upper clamp when growing `p`.
    poison_p_clamp: bool,
}

impl ArcPolicy {
    /// Creates ARC for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        ArcPolicy {
            geom: *geom,
            ways: geom.ways(),
            lists: vec![SetLists::default(); geom.sets()],
            blocks: vec![0; geom.sets() * geom.ways()],
            p: 0,
            fill_to_t2: false,
            poison_p_clamp: false,
        }
    }

    /// The current T1 target in ways (diagnostic aid; truncating).
    pub fn t1_target(&self) -> u64 {
        self.p / P_SCALE
    }

    /// Disables the upper clamp on the adaptation target `p`, so repeated
    /// B1 ghost hits push it past `ways * P_SCALE`. This is a *seeded
    /// defect* used to prove the bounded model checker catches broken `p`
    /// updates; it exercises the production `on_miss` path with only the
    /// clamp removed.
    #[doc(hidden)]
    pub fn poison_p_clamp(&mut self) {
        self.poison_p_clamp = true;
    }
}

impl ReplacementPolicy for ArcPolicy {
    fn name(&self) -> &str {
        "ARC"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let s = &self.lists[set];
        // REPLACE: shed T1 while it holds more than the target share (or
        // T2 has nothing to give); otherwise shed T2. Victims come from
        // each list's LRU end.
        let from_t1 = !s.t1.is_empty() && (s.t2.is_empty() || s.t1.len() as u64 * P_SCALE > self.p);
        let list = if from_t1 { &s.t1 } else { &s.t2 };
        *list
            .last()
            .expect("victim asked of a set with no residents")
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        // Any reuse promotes to T2's MRU position.
        let s = &mut self.lists[set];
        s.drop_way(way);
        s.t2.insert(0, way);
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessContext) {
        let block = self.geom.block_of(ctx.addr);
        let s = &mut self.lists[set];
        if let Some(i) = s.b1.iter().position(|&b| b == block) {
            // Recency ghost hit: T1 was too small — grow the target.
            s.b1.remove(i);
            let step = (s.b2.len() as u64 / s.b1.len().max(1) as u64).max(1);
            self.p = if self.poison_p_clamp {
                self.p + step * P_SCALE
            } else {
                (self.p + step * P_SCALE).min(self.ways as u64 * P_SCALE)
            };
            self.fill_to_t2 = true;
        } else if let Some(i) = s.b2.iter().position(|&b| b == block) {
            // Frequency ghost hit: T2 was too small — shrink the target.
            s.b2.remove(i);
            let step = (s.b1.len() as u64 / s.b2.len().max(1) as u64).max(1);
            self.p = self.p.saturating_sub(step * P_SCALE);
            self.fill_to_t2 = true;
        } else {
            self.fill_to_t2 = false;
        }
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let block = self.blocks[set * self.ways + way];
        let s = &mut self.lists[set];
        let (ghost, cap) = match s.drop_way(way) {
            Some(List::T2) => (&mut s.b2, self.ways),
            // T1 members and (defensively) untracked ways ghost into B1.
            _ => (&mut s.b1, self.ways),
        };
        ghost.insert(0, block);
        ghost.truncate(cap);
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        self.blocks[set * self.ways + way] = self.geom.block_of(ctx.addr);
        let to_t2 = std::mem::take(&mut self.fill_to_t2);
        let s = &mut self.lists[set];
        s.drop_way(way);
        if to_t2 {
            s.t2.insert(0, way);
        } else {
            s.t1.insert(0, way);
        }
    }

    fn bits_per_set(&self) -> u64 {
        // List id + position per line at the stack-LRU figure, plus two
        // ghost lists of `ways` 16-bit compressed tags each (a hardware
        // ARC would store partial tags; the simulator's full addresses
        // are a modelling convenience, not accounted storage).
        self.ways as u64
            + sim_core::overhead::lru_bits_per_set(self.ways)
            + 2 * self.ways as u64 * 16
    }

    fn global_bits(&self) -> u64 {
        // The adaptation target.
        16
    }

    // One global `p` trained by every set's ghost hits: sharding would
    // split the adaptation stream. Default ShardAffinity::Global is
    // correct and load-bearing.

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let s = &self.lists[set];
        let mut d = Vec::new();
        // Resident lists with their block addresses (only resident ways'
        // `blocks` entries are behaviourally live — evicted ways keep a
        // stale copy that the next fill overwrites before any read).
        for list in [&s.t1, &s.t2] {
            for &w in list {
                d.push(w as u8);
                d.extend_from_slice(&self.blocks[set * self.ways + w].to_le_bytes());
            }
            d.push(0xff);
        }
        for ghost in [&s.b1, &s.b2] {
            for &b in ghost {
                d.extend_from_slice(&b.to_le_bytes());
            }
            d.push(0xff);
        }
        Some(d)
    }

    fn audit_global_digest(&self) -> Vec<u8> {
        let mut d = self.p.to_le_bytes().to_vec();
        d.push(u8::from(self.fill_to_t2));
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        let cap = self.ways as u64 * P_SCALE;
        if self.p > cap {
            return Err(format!(
                "ARC adaptation target p = {} exceeds {cap} (ways * P_SCALE)",
                self.p
            ));
        }
        for (set, s) in self.lists.iter().enumerate() {
            if s.b1.len() > self.ways || s.b2.len() > self.ways {
                return Err(format!(
                    "ARC ghost lists in set {set} exceed capacity {}: |B1| = {}, |B2| = {}",
                    self.ways,
                    s.b1.len(),
                    s.b2.len()
                ));
            }
            if s.t1.len() + s.t2.len() > self.ways {
                return Err(format!(
                    "ARC resident lists in set {set} exceed {} ways",
                    self.ways
                ));
            }
            let mut seen = vec![false; self.ways];
            for &w in s.t1.iter().chain(&s.t2) {
                if w >= self.ways {
                    return Err(format!("ARC way {w} in set {set} is out of range"));
                }
                if seen[w] {
                    return Err(format!(
                        "ARC way {w} in set {set} appears on T1/T2 more than once"
                    ));
                }
                seen[w] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{Access, SetAssocCache, ShardAffinity};

    fn geom(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry::from_sets(sets, ways, 64).unwrap()
    }

    fn cache(sets: usize, ways: usize) -> SetAssocCache {
        let g = geom(sets, ways);
        SetAssocCache::new(g, Box::new(ArcPolicy::new(&g)))
    }

    fn rd(blk: u64) -> AccessContext {
        Access::read(blk * 64, 0).context()
    }

    #[test]
    fn single_touch_blocks_stay_in_t1_and_evict_first() {
        // Fill a 4-way set, re-touch two blocks (→ T2), then force an
        // eviction: a T1 (single-touch) block must go, and of those the
        // older one.
        let mut c = cache(1, 4);
        for b in 0..4u64 {
            c.access_block(b, &rd(b));
        }
        c.access_block(0, &rd(0));
        c.access_block(1, &rd(1));
        let out = c.access_block(10, &rd(10));
        assert_eq!(out.evicted.unwrap().block_addr, 2, "T1 LRU evicts first");
    }

    #[test]
    fn ghost_hit_routes_refill_to_t2_and_moves_p() {
        let g = geom(1, 2);
        let mut p = ArcPolicy::new(&g);
        // Fill 0,1; evict 0 (a T1 member → ghost B1); refill 0.
        p.on_fill(0, 0, &rd(0));
        p.on_fill(0, 1, &rd(1));
        p.on_evict(0, 0);
        assert_eq!(p.lists[0].b1, vec![0]);
        p.on_miss(0, &rd(0));
        assert!(p.t1_target() >= 1, "B1 hit grows the T1 target");
        p.on_fill(0, 0, &rd(0));
        assert_eq!(p.lists[0].t2, vec![0], "ghost-hit refill lands in T2");
        assert_eq!(p.lists[0].t1, vec![1]);
    }

    #[test]
    fn b2_ghost_hit_shrinks_p() {
        let g = geom(1, 2);
        let mut p = ArcPolicy::new(&g);
        p.p = 2 * P_SCALE;
        p.on_fill(0, 0, &rd(0));
        p.on_hit(0, 0, &rd(0)); // way 0 → T2
        p.on_evict(0, 0);
        assert_eq!(p.lists[0].b2, vec![0]);
        p.on_miss(0, &rd(0));
        assert!(p.p < 2 * P_SCALE, "B2 hit shrinks the T1 target");
    }

    #[test]
    fn loop_plus_scan_prefers_the_loop() {
        // A small loop re-touched every round (T2 material) survives a
        // long scan of single-touch blocks, which ARC confines to T1.
        let mut c = cache(16, 4);
        let loop_blocks: Vec<u64> = (0..32).collect();
        let mut scan = 1 << 20;
        for _ in 0..40 {
            for &b in &loop_blocks {
                c.access_block(b, &rd(b));
            }
            for _ in 0..64 {
                c.access_block(scan, &rd(scan));
                scan += 1;
            }
        }
        let before = c.stats().hits;
        for &b in &loop_blocks {
            c.access_block(b, &rd(b));
        }
        assert!(
            c.stats().hits - before >= 24,
            "loop working set largely resident, got {} of 32",
            c.stats().hits - before
        );
    }

    #[test]
    fn resident_lists_always_partition_the_set() {
        let mut c = cache(4, 4);
        let mut x = 7u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access_block(x % 64, &rd(x % 64));
        }
        // Reach into the policy via a fresh replay to check invariants.
        let g = geom(4, 4);
        let mut p = ArcPolicy::new(&g);
        let mut filled = [0usize; 4];
        let mut x = 7u64;
        let mut resident: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let blk = x % 64;
            let set = g.set_of_block(blk);
            let ctx = rd(blk);
            if let Some(w) = resident[set].iter().position(|&b| b == blk) {
                p.on_hit(set, w, &ctx);
            } else {
                p.on_miss(set, &ctx);
                let w = if filled[set] < 4 {
                    resident[set].push(blk);
                    filled[set] += 1;
                    filled[set] - 1
                } else {
                    let w = p.victim(set, &ctx);
                    p.on_evict(set, w);
                    resident[set][w] = blk;
                    w
                };
                p.on_fill(set, w, &ctx);
            }
            let s = &p.lists[set];
            assert_eq!(s.t1.len() + s.t2.len(), filled[set]);
            for w in 0..filled[set] {
                assert_eq!(
                    s.t1.contains(&w) as usize + s.t2.contains(&w) as usize,
                    1,
                    "way {w} must be on exactly one list"
                );
            }
            assert!(s.b1.len() <= 4 && s.b2.len() <= 4);
            assert!(p.p <= 4 * P_SCALE);
        }
    }

    #[test]
    fn declared_shape_and_storage() {
        let g = geom(4, 16);
        let p = ArcPolicy::new(&g);
        assert_eq!(p.shard_affinity(), ShardAffinity::Global);
        assert_eq!(p.global_bits(), 16);
        assert_eq!(
            p.bits_per_set(),
            16 + sim_core::overhead::lru_bits_per_set(16) + 2 * 16 * 16
        );
    }
}
