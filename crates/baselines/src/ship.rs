//! SHiP-PC: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! SHiP augments SRRIP with a table of saturating counters (the SHCT)
//! indexed by a hash of the memory instruction's PC. Lines filled by
//! instructions whose past fills were never reused are inserted "distant"
//! (immediately evictable); everyone else is inserted "long" as in SRRIP.
//! The comparison paper lists SHiP as related work that beats DRRIP but
//! requires the memory instruction's address at the LLC — exactly the extra
//! communication channel GIPPR avoids — so it is included here as an
//! extension baseline.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// log2 of the SHCT size (16K entries, the SHiP paper's configuration).
const SHCT_BITS: u32 = 14;
/// SHCT counter ceiling (3-bit counters).
const SHCT_MAX: u8 = 7;
/// RRPV ceiling (2-bit, as in SRRIP).
const RRPV_MAX: u8 = 3;

/// SHiP-PC over an SRRIP substrate.
///
/// Per-line state: 2-bit RRPV, 14-bit signature, 1-bit outcome. Note the
/// SHiP paper accounts ~5 extra bits per block by hashing the stored
/// signature; we store it in full and account honestly, which makes our
/// SHiP's storage an upper bound.
#[derive(Debug, Clone)]
pub struct ShipPolicy {
    ways: usize,
    rrpv: Vec<u8>,
    signature: Vec<u16>,
    outcome: Vec<bool>,
    shct: Vec<u8>,
}

impl ShipPolicy {
    /// Creates SHiP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        let lines = geom.sets() * geom.ways();
        ShipPolicy {
            ways: geom.ways(),
            rrpv: vec![RRPV_MAX; lines],
            signature: vec![0; lines],
            outcome: vec![false; lines],
            // Weakly reused: new signatures get one chance.
            shct: vec![1; 1 << SHCT_BITS],
        }
    }

    /// The signature for a memory instruction PC.
    pub fn signature_of(pc: u64) -> u16 {
        // Fold the PC so nearby instructions map to distinct entries.
        let folded = (pc >> 2) ^ (pc >> 16) ^ (pc >> 32);
        (folded & ((1 << SHCT_BITS) - 1)) as u16
    }

    /// Current SHCT counter for a signature (diagnostic aid).
    pub fn shct_value(&self, sig: u16) -> u8 {
        self.shct[usize::from(sig)]
    }
}

impl ReplacementPolicy for ShipPolicy {
    fn name(&self) -> &str {
        "SHiP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == RRPV_MAX) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let idx = set * self.ways + way;
        self.rrpv[idx] = 0;
        if !self.outcome[idx] {
            self.outcome[idx] = true;
            let sig = usize::from(self.signature[idx]);
            self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
        }
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let idx = set * self.ways + way;
        if !self.outcome[idx] {
            let sig = usize::from(self.signature[idx]);
            self.shct[sig] = self.shct[sig].saturating_sub(1);
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        let idx = set * self.ways + way;
        let sig = Self::signature_of(ctx.pc);
        self.signature[idx] = sig;
        self.outcome[idx] = false;
        self.rrpv[idx] = if self.shct[usize::from(sig)] == 0 {
            RRPV_MAX // predicted zero-reuse: immediately evictable
        } else {
            RRPV_MAX - 1 // SRRIP's long insertion
        };
    }

    fn bits_per_set(&self) -> u64 {
        self.ways as u64 * (2 + 1 + u64::from(SHCT_BITS))
    }

    fn global_bits(&self) -> u64 {
        (1u64 << SHCT_BITS) * 3
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        let mut d = Vec::with_capacity(self.ways * 4);
        for idx in base..base + self.ways {
            d.push(self.rrpv[idx]);
            d.extend_from_slice(&self.signature[idx].to_le_bytes());
            d.push(u8::from(self.outcome[idx]));
        }
        Some(d)
    }

    fn audit_global_digest(&self) -> Vec<u8> {
        // Sparse digest of SHCT entries that have moved off the init value.
        let mut d = Vec::new();
        for (i, &v) in self.shct.iter().enumerate() {
            if v != 1 {
                d.extend_from_slice(&(i as u16).to_le_bytes());
                d.push(v);
            }
        }
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        if let Some(idx) = self.rrpv.iter().position(|&v| v > RRPV_MAX) {
            return Err(format!(
                "SHiP RRPV {} at line {idx} exceeds {RRPV_MAX}",
                self.rrpv[idx]
            ));
        }
        if let Some(sig) = self.shct.iter().position(|&v| v > SHCT_MAX) {
            return Err(format!(
                "SHCT counter {} for signature {sig} exceeds {SHCT_MAX}",
                self.shct[sig]
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 16, 64).unwrap()
    }

    fn ctx(pc: u64) -> AccessContext {
        AccessContext {
            pc,
            addr: 0,
            is_write: false,
        }
    }

    #[test]
    fn streaming_pc_learns_zero_reuse() {
        let g = geom();
        let mut p = ShipPolicy::new(&g);
        let stream_pc = 0x4000_0000u64;
        let sig = ShipPolicy::signature_of(stream_pc);
        // Fill and evict repeatedly without reuse: SHCT decays to zero.
        for i in 0..32usize {
            let way = i % 16;
            p.on_fill(0, way, &ctx(stream_pc));
            p.on_evict(0, way);
        }
        assert_eq!(p.shct_value(sig), 0);
        // Subsequent fills by that PC are inserted distant.
        p.on_fill(1, 0, &ctx(stream_pc));
        assert_eq!(p.rrpv[16], RRPV_MAX);
    }

    #[test]
    fn reused_pc_keeps_long_insertion() {
        let g = geom();
        let mut p = ShipPolicy::new(&g);
        let loop_pc = 0x1234u64;
        for i in 0..16usize {
            p.on_fill(0, i % 16, &ctx(loop_pc));
            p.on_hit(0, i % 16, &ctx(loop_pc));
        }
        let sig = ShipPolicy::signature_of(loop_pc);
        assert!(p.shct_value(sig) > 1);
        p.on_fill(2, 3, &ctx(loop_pc));
        assert_eq!(p.rrpv[2 * 16 + 3], RRPV_MAX - 1);
    }

    #[test]
    fn one_hit_trains_once_per_generation() {
        let g = geom();
        let mut p = ShipPolicy::new(&g);
        let pc = 0x999u64;
        let sig = ShipPolicy::signature_of(pc);
        p.on_fill(0, 0, &ctx(pc));
        let before = p.shct_value(sig);
        p.on_hit(0, 0, &ctx(pc));
        p.on_hit(0, 0, &ctx(pc));
        p.on_hit(0, 0, &ctx(pc));
        assert_eq!(
            p.shct_value(sig),
            before + 1,
            "repeat hits train the SHCT once"
        );
    }

    #[test]
    fn mixed_workload_beats_srrip_on_dead_fills() {
        // One PC streams dead blocks through the cache, another loops over
        // a working set. SHiP should insert the dead fills distant and keep
        // more of the working set than plain SRRIP.
        let g = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let mut ship = SetAssocCache::new(g, Box::new(ShipPolicy::new(&g)));
        let mut srrip = SetAssocCache::new(g, Box::new(crate::rrip::SrripPolicy::new(&g)));
        let loop_pc = 0x10u64;
        let stream_pc = 0x20u64;
        let ws = 384u64;
        let mut scan = 1 << 20;
        for _ in 0..200 {
            for b in 0..ws {
                let c = AccessContext {
                    pc: loop_pc,
                    addr: b << 6,
                    is_write: false,
                };
                ship.access_block(b, &c);
                srrip.access_block(b, &c);
            }
            for _ in 0..256 {
                let c = AccessContext {
                    pc: stream_pc,
                    addr: scan << 6,
                    is_write: false,
                };
                ship.access_block(scan, &c);
                srrip.access_block(scan, &c);
                scan += 1;
            }
        }
        assert!(
            ship.stats().misses <= srrip.stats().misses,
            "SHiP {} vs SRRIP {}",
            ship.stats().misses,
            srrip.stats().misses
        );
    }

    #[test]
    fn storage_accounting() {
        let p = ShipPolicy::new(&geom());
        assert_eq!(p.bits_per_set(), 16 * 17);
        assert_eq!(p.global_bits(), 16384 * 3);
    }
}
