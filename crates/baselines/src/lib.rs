#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Baseline last-level cache replacement policies.
//!
//! Every policy the paper compares against (or builds on), implemented
//! against the [`sim_core::ReplacementPolicy`] interface:
//!
//! * [`TrueLru`] — textbook least-recently-used (64 bits/set at 16 ways).
//!   Implemented with timestamps rather than a recency stack so it can
//!   cross-check the stack-based GIPLR implementation in tests.
//! * [`RandomPolicy`] — seeded uniform random victim selection.
//! * [`FifoPolicy`] — first-in-first-out.
//! * [`DipPolicy`] — Dynamic Insertion Policy (Qureshi et al., ISCA 2007):
//!   set-dueling between classic LRU insertion and bimodal LRU-position
//!   insertion, on full LRU stacks.
//! * [`SrripPolicy`] / [`BrripPolicy`] / [`DrripPolicy`] — the RRIP family
//!   (Jaleel et al., ISCA 2010) with 2-bit re-reference prediction values;
//!   DRRIP set-duels SRRIP against BRRIP.
//! * [`PdpPolicy`] — Protecting Distance based Policy (Duong et al., MICRO
//!   2012) in its no-bypass configuration: a reuse-distance sampler feeds a
//!   protecting-distance computation; lines are protected until their
//!   distance expires.
//! * [`ShipPolicy`] — Signature-based Hit Predictor (Wu et al., MICRO
//!   2011) over an SRRIP substrate, using memory-instruction PCs.
//! * [`EhcPolicy`] — Expected-Hit-Count replacement (Vakil-Ghahani et
//!   al., CAL 2018): a PC-signature table learns hits-per-residency and
//!   the victim is the line with the fewest remaining expected hits.
//! * [`AwrpPolicy`] — Adaptive Weight Ranking Policy (Swain et al.,
//!   2011): victim = argmin of recency timestamp plus a capped
//!   frequency bonus.
//! * [`ArcPolicy`] — ARC-style adaptive replacement (Megiddo & Modha,
//!   FAST 2003) with per-set T1/T2/B1/B2 lists and one cache-global
//!   adaptation target.
//!
//! # Example
//!
//! ```
//! use baselines::DrripPolicy;
//! use sim_core::{Access, CacheGeometry, SetAssocCache};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;
//! let mut llc = SetAssocCache::new(geom, Box::new(DrripPolicy::new(&geom)?));
//! for i in 0..1000u64 {
//!     llc.access(&Access::read(i * 64, 0x400));
//! }
//! assert_eq!(llc.stats().misses, 1000, "pure streaming never hits");
//! # Ok(())
//! # }
//! ```

pub mod arc;
pub mod awrp;
pub mod dip;
pub mod ehc;
pub mod fifo;
pub mod lru;
pub mod pdp;
pub mod random;
pub mod rrip;
pub mod rrip_ipv;
pub mod sdbp;
pub mod ship;

pub use arc::ArcPolicy;
pub use awrp::AwrpPolicy;
pub use dip::DipPolicy;
pub use ehc::EhcPolicy;
pub use fifo::FifoPolicy;
pub use lru::TrueLru;
pub use pdp::{PdpConfig, PdpPolicy};
pub use random::RandomPolicy;
pub use rrip::{BrripPolicy, DrripPolicy, SrripPolicy};
pub use rrip_ipv::RripIpvPolicy;
pub use sdbp::SdbpPolicy;
pub use ship::ShipPolicy;
