//! True least-recently-used replacement via timestamps.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// Textbook LRU: evict the block whose last use is oldest.
///
/// This implementation keeps a monotonically increasing logical clock and a
/// per-line timestamp, which makes it structurally different from the
/// recency-stack GIPLR implementation in the `gippr` crate — the two are
/// cross-checked against each other in integration tests. Its *hardware*
/// cost is accounted at the paper's figure for stack LRU: `k log2 k` bits
/// per set (64 bits for 16 ways).
///
/// # Example
///
/// ```
/// use baselines::TrueLru;
/// use sim_core::{Access, CacheGeometry, SetAssocCache};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(64 * 1024, 16, 64)?;
/// let mut cache = SetAssocCache::new(geom, Box::new(TrueLru::new(&geom)));
/// cache.access(&Access::read(0, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TrueLru {
    ways: usize,
    clock: u64,
    last_use: Vec<u64>,
}

impl TrueLru {
    /// Creates an LRU policy for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        TrueLru {
            ways: geom.ways(),
            clock: 0,
            last_use: vec![0; geom.sets() * geom.ways()],
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        // The clock advances in strides of `ways` (a power of two), so
        // every timestamp's low `log2(ways)` bits are zero — reserved for
        // the way index that `victim` packs in.
        self.clock += self.ways as u64;
        self.last_use[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for TrueLru {
    fn name(&self) -> &str {
        "LRU"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        // Fold the way index into the timestamp's low bits so the oldest
        // way falls out of a plain `min` — a branchless reduction the
        // compiler can vectorize, unlike `min_by_key` with index
        // tracking. Timestamps are scaled by `ways` on update, so the
        // packing loses nothing.
        let base = set * self.ways;
        let key = self.last_use[base..base + self.ways]
            .iter()
            .enumerate()
            .map(|(w, &t)| t | w as u64)
            .min()
            .expect("ways > 0");
        (key as usize) & (self.ways - 1)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::lru_bits_per_set(self.ways)
    }

    // The timestamp clock is global, but victim selection is an argmin of
    // `last_use` *within one set*: only the relative order of a set's own
    // timestamps matters, and stable bucketing preserves per-set access
    // order, so the argmin is identical under sharded replay.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    // True LRU is the all-zero stack IPV: hit and fill both move the block
    // to MRU, the victim is the stack bottom. The timestamp argmin above
    // observes only within-set recency order, which the packed stack
    // reproduces exactly (victims are only requested for full sets, and
    // every fill touches).
    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::StackIpv {
            ipv: vec![0; self.ways + 1],
        })
    }

    // Raw timestamps grow without bound, but behaviour depends only on the
    // within-set recency *order* (victim is an argmin, touch installs a new
    // maximum). Digesting the rank permutation is exactly the quotient that
    // justifies the `SetLocal` claim above, and it keeps the reachable state
    // space finite for the bounded model checker. Ties (untouched ways share
    // timestamp 0) break toward the lower way, matching the packed argmin.
    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        let stamps = &self.last_use[base..base + self.ways];
        let mut order: Vec<usize> = (0..self.ways).collect();
        order.sort_by_key(|&w| (stamps[w], w));
        let mut rank = vec![0u8; self.ways];
        for (r, &w) in order.iter().enumerate() {
            rank[w] = r as u8;
        }
        Some(rank)
    }

    fn audit_invariants(&self) -> Result<(), String> {
        let ways = self.ways as u64;
        if self.clock % ways != 0 {
            return Err(format!(
                "LRU clock {} is not a multiple of ways {ways}",
                self.clock
            ));
        }
        if let Some((idx, &t)) = self
            .last_use
            .iter()
            .enumerate()
            .find(|&(_, &t)| t > self.clock || t % ways != 0)
        {
            return Err(format!(
                "LRU timestamp {t} at line {idx} exceeds clock {} or breaks way alignment",
                self.clock
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn evicts_least_recent() {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let mut p = TrueLru::new(&g);
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx()); // way 0 refreshed; way 1 is now oldest
        assert_eq!(p.victim(0, &ctx()), 1);
    }

    #[test]
    fn stack_behaviour_in_cache() {
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut c = SetAssocCache::new(g, Box::new(TrueLru::new(&g)));
        for blk in 0..4u64 {
            c.access_block(blk, &ctx());
        }
        c.access_block(0, &ctx()); // refresh block 0
        let out = c.access_block(4, &ctx()); // evicts block 1
        assert_eq!(out.evicted.unwrap().block_addr, 1);
    }

    #[test]
    fn bits_per_set_matches_paper() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        assert_eq!(TrueLru::new(&g).bits_per_set(), 64);
    }

    #[test]
    fn sets_do_not_interfere() {
        let g = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let mut p = TrueLru::new(&g);
        p.on_fill(0, 0, &ctx());
        p.on_fill(1, 0, &ctx());
        p.on_fill(0, 1, &ctx());
        p.on_fill(1, 1, &ctx());
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.victim(0, &ctx()), 1);
        assert_eq!(p.victim(1, &ctx()), 0);
    }
}
