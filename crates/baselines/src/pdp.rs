//! PDP: Protecting Distance based Policy (Duong et al., MICRO 2012).
//!
//! PDP protects each line from eviction for a *protecting distance* (PD):
//! a number of accesses to its set within which a reuse is statistically
//! worth waiting for. A sampler measures the reuse-distance distribution,
//! and a small "microcontroller" periodically recomputes the PD that
//! maximizes hit rate per unit of cache occupancy:
//!
//! ```text
//!            Σ_{i ≤ d} N_i                      (expected hits)
//! E(d) = ─────────────────────────────────────
//!        Σ_{i ≤ d} N_i·i + (N_total − Σ N_i)·d  (expected occupancy time)
//! ```
//!
//! We implement the paper's **no-bypass** configuration at 4 bits per line
//! (a 3-bit remaining-distance counter plus a reuse bit), the variant
//! Jiménez compares against (GIPPR achieves ~95 % of its speedup with a
//! small fraction of the state). Victim selection prefers unprotected
//! lines; when every line is protected it evicts the *never-reused* line
//! farthest from expiry — i.e. the newest streaming insertion — which
//! approximates PDP's bypass behaviour without violating inclusion.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// Tunables for [`PdpPolicy`]. The defaults mirror the configuration used
/// in the comparison paper: 4 bits per line, no bypass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdpConfig {
    /// Width of the per-line remaining-protecting-distance counter.
    pub rpd_bits: u32,
    /// Largest measurable reuse distance (in set accesses).
    pub max_distance: usize,
    /// Accesses between protecting-distance recomputations.
    pub compute_period: u64,
    /// One in `sampler_stride` sets feeds the reuse-distance sampler.
    pub sampler_stride: usize,
    /// Protecting distance assumed before the first recomputation.
    pub initial_pd: usize,
    /// Tags remembered per sampled set.
    pub sampler_depth: usize,
}

impl Default for PdpConfig {
    fn default() -> Self {
        PdpConfig {
            rpd_bits: 3,
            max_distance: 256,
            compute_period: 128 * 1024,
            sampler_stride: 64,
            initial_pd: 64,
            sampler_depth: 64,
        }
    }
}

#[derive(Debug, Clone)]
struct SamplerEntry {
    tag: u64,
    last_count: u64,
}

/// Protecting Distance based Policy, no-bypass configuration.
///
/// Per-line state: a quantized remaining-protecting-distance (RPD) counter.
/// On every access to a set, a per-set tick counter advances; each time it
/// reaches the quantization step `ceil(PD / (2^rpd_bits - 1))`, all RPDs in
/// the set decay by one. Hits and fills re-arm a line's RPD to the maximum.
/// The victim is an unprotected line (RPD = 0) if any exists, otherwise the
/// line closest to expiry.
#[derive(Debug, Clone)]
pub struct PdpPolicy {
    cfg: PdpConfig,
    ways: usize,
    line_shift: u32,
    rpd: Vec<u8>,
    reused: Vec<bool>,
    rpd_max: u8,
    tick: Vec<u8>,
    quantum: u8,
    /// Reuse-distance histogram: `hist[d]` counts reuses at distance `d+1`.
    hist: Vec<u64>,
    total_sampled: u64,
    sampler: Vec<Vec<SamplerEntry>>,
    set_access_count: Vec<u64>,
    accesses: u64,
    pd: usize,
}

impl PdpPolicy {
    /// Creates PDP with default configuration.
    pub fn new(geom: &CacheGeometry) -> Self {
        Self::with_config(geom, PdpConfig::default())
    }

    /// Creates PDP with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rpd_bits` is 0 or greater than 8, or if the sampler
    /// stride or depth is 0.
    pub fn with_config(geom: &CacheGeometry, cfg: PdpConfig) -> Self {
        assert!((1..=8).contains(&cfg.rpd_bits), "rpd_bits must be in 1..=8");
        assert!(
            cfg.sampler_stride > 0 && cfg.sampler_depth > 0,
            "sampler dims must be nonzero"
        );
        let rpd_max = ((1u16 << cfg.rpd_bits) - 1) as u8;
        let sampled_sets = geom.sets().div_ceil(cfg.sampler_stride);
        let mut policy = PdpPolicy {
            cfg,
            ways: geom.ways(),
            line_shift: geom.line_bytes().trailing_zeros(),
            rpd: vec![0; geom.sets() * geom.ways()],
            reused: vec![false; geom.sets() * geom.ways()],
            rpd_max,
            tick: vec![0; geom.sets()],
            quantum: 1,
            hist: vec![0; cfg.max_distance],
            total_sampled: 0,
            sampler: (0..sampled_sets).map(|_| Vec::new()).collect(),
            set_access_count: vec![0; sampled_sets],
            accesses: 0,
            pd: cfg.initial_pd,
        };
        policy.quantum = policy.quantum_for(policy.pd);
        policy
    }

    /// The protecting distance currently in force.
    pub fn protecting_distance(&self) -> usize {
        self.pd
    }

    /// The reuse-distance histogram accumulated so far (diagnostic aid).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Whether a line's remaining protecting distance is still nonzero
    /// (test/diagnostic aid: the victim invariant says a protected line is
    /// never evicted while an unprotected one exists).
    pub fn is_protected(&self, set: usize, way: usize) -> bool {
        self.rpd[set * self.ways + way] != 0
    }

    fn quantum_for(&self, pd: usize) -> u8 {
        (pd.max(1)).div_ceil(usize::from(self.rpd_max)).min(255) as u8
    }

    /// The paper's benefit function `E(d)`; returns the maximizing distance.
    fn compute_pd(&self) -> usize {
        if self.total_sampled == 0 {
            return self.cfg.initial_pd;
        }
        let mut best_d = 1;
        let mut best_e = 0.0f64;
        let mut hits: u64 = 0;
        let mut weighted: u64 = 0;
        for d in 1..=self.cfg.max_distance {
            let n = self.hist[d - 1];
            hits += n;
            weighted += n * d as u64;
            let occupancy = weighted + (self.total_sampled - hits) * d as u64;
            if occupancy == 0 {
                continue;
            }
            let e = hits as f64 / occupancy as f64;
            if e > best_e {
                best_e = e;
                best_d = d;
            }
        }
        best_d
    }

    fn sample(&mut self, set: usize, ctx: &AccessContext) {
        if set % self.cfg.sampler_stride != 0 {
            return;
        }
        let idx = set / self.cfg.sampler_stride;
        self.set_access_count[idx] += 1;
        let now = self.set_access_count[idx];
        let tag = ctx.addr >> self.line_shift;
        let entries = &mut self.sampler[idx];
        if let Some(e) = entries.iter_mut().find(|e| e.tag == tag) {
            let rd = (now - e.last_count) as usize;
            let bucket = rd.clamp(1, self.cfg.max_distance) - 1;
            self.hist[bucket] += 1;
            self.total_sampled += 1;
            e.last_count = now;
        } else {
            if entries.len() == self.cfg.sampler_depth {
                entries.remove(0);
            }
            entries.push(SamplerEntry {
                tag,
                last_count: now,
            });
        }
    }

    fn on_any_access(&mut self, set: usize, ctx: &AccessContext) {
        self.sample(set, ctx);
        // Periodic PD recomputation ("microcontroller" duty cycle).
        self.accesses += 1;
        if self.accesses % self.cfg.compute_period == 0 {
            self.pd = self.compute_pd();
            self.quantum = self.quantum_for(self.pd);
            // Age the histogram so PD tracks phase changes.
            for h in &mut self.hist {
                *h /= 2;
            }
            self.total_sampled /= 2;
        }
        // Quantized decay of the set's protection counters.
        self.tick[set] += 1;
        if self.tick[set] >= self.quantum {
            self.tick[set] = 0;
            let base = set * self.ways;
            for w in 0..self.ways {
                self.rpd[base + w] = self.rpd[base + w].saturating_sub(1);
            }
        }
    }
}

impl ReplacementPolicy for PdpPolicy {
    fn name(&self) -> &str {
        "PDP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        // Unprotected line first.
        if let Some(w) = (0..self.ways).find(|&w| self.rpd[base + w] == 0) {
            return w;
        }
        // All protected: sacrifice the newest never-reused insertion (the
        // bypass-like choice); if everything has been reused, the newest
        // line overall.
        (0..self.ways)
            .max_by_key(|&w| (!self.reused[base + w], self.rpd[base + w]))
            .expect("ways > 0")
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        self.on_any_access(set, ctx);
        self.rpd[set * self.ways + way] = self.rpd_max;
        self.reused[set * self.ways + way] = true;
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessContext) {
        self.on_any_access(set, ctx);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.rpd[set * self.ways + way] = self.rpd_max;
        self.reused[set * self.ways + way] = false;
    }

    fn bits_per_set(&self) -> u64 {
        // Per-line RPD counters and reuse bits, plus the per-set tick
        // counter (4 bits per block total at the default configuration).
        self.ways as u64 * (u64::from(self.cfg.rpd_bits) + 1) + 8
    }

    fn global_bits(&self) -> u64 {
        // Sampler tags/counters plus the histogram and PD registers — the
        // structures the PDP paper assigns to its dedicated microcontroller
        // (an additional ~10K NAND gates of logic not counted here).
        let sampler_bits = self.sampler.len() as u64 * self.cfg.sampler_depth as u64 * 32;
        let hist_bits = self.cfg.max_distance as u64 * 16;
        sampler_bits + hist_bits + 64
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        let mut d = Vec::with_capacity(self.ways * 2 + 1);
        for w in 0..self.ways {
            d.push(self.rpd[base + w]);
            d.push(u8::from(self.reused[base + w]));
        }
        d.push(self.tick[set]);
        Some(d)
    }

    // The raw access counter drives the periodic PD recomputation, so it is
    // genuinely part of the behavioural state and genuinely unbounded: PDP
    // is one of the policies the checker covers bounded-only.
    fn audit_global_digest(&self) -> Vec<u8> {
        let mut d = Vec::new();
        d.extend_from_slice(&(self.pd as u64).to_le_bytes());
        d.push(self.quantum);
        d.extend_from_slice(&self.accesses.to_le_bytes());
        d.extend_from_slice(&self.total_sampled.to_le_bytes());
        for (i, &h) in self.hist.iter().enumerate() {
            if h != 0 {
                d.extend_from_slice(&(i as u16).to_le_bytes());
                d.extend_from_slice(&h.to_le_bytes());
            }
        }
        for (idx, entries) in self.sampler.iter().enumerate() {
            d.extend_from_slice(&self.set_access_count[idx].to_le_bytes());
            for e in entries {
                d.extend_from_slice(&e.tag.to_le_bytes());
                d.extend_from_slice(&e.last_count.to_le_bytes());
            }
            d.push(0xff);
        }
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        if let Some(idx) = self.rpd.iter().position(|&v| v > self.rpd_max) {
            return Err(format!(
                "PDP RPD counter {} at line {idx} exceeds max {}",
                self.rpd[idx], self.rpd_max
            ));
        }
        if self.quantum != self.quantum_for(self.pd) {
            return Err(format!(
                "PDP cached quantum {} is stale for PD {}",
                self.quantum, self.pd
            ));
        }
        if let Some(idx) = self
            .sampler
            .iter()
            .position(|e| e.len() > self.cfg.sampler_depth)
        {
            return Err(format!(
                "PDP sampler {idx} holds {} entries, over depth {}",
                self.sampler[idx].len(),
                self.cfg.sampler_depth
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(256, 16, 64).unwrap()
    }

    fn ctx_for(addr: u64) -> AccessContext {
        AccessContext {
            pc: 0,
            addr,
            is_write: false,
        }
    }

    #[test]
    fn fresh_lines_are_unprotected() {
        let mut p = PdpPolicy::new(&geom());
        assert_eq!(p.victim(0, &ctx_for(0)), 0, "all RPDs zero: first way wins");
    }

    #[test]
    fn fill_protects_line() {
        let mut p = PdpPolicy::new(&geom());
        p.on_fill(0, 3, &ctx_for(0));
        assert_ne!(
            p.victim(0, &ctx_for(0)),
            3,
            "a just-filled line is protected"
        );
    }

    #[test]
    fn protection_expires_after_pd_accesses() {
        let g = geom();
        let mut p = PdpPolicy::with_config(
            &g,
            PdpConfig {
                initial_pd: 7,
                compute_period: u64::MAX,
                ..PdpConfig::default()
            },
        );
        // quantum = ceil(7/7) = 1: every access decays by 1.
        p.on_fill(0, 3, &ctx_for(0));
        for w in (0..16).filter(|&w| w != 3) {
            p.on_fill(0, w, &ctx_for(0));
        }
        // Hammer the set with misses elsewhere: line 3's protection decays.
        for i in 0..7 {
            p.on_miss(0, &ctx_for(1 << 20 | i));
        }
        assert_eq!(p.rpd[3], 0, "protection fully decayed");
    }

    #[test]
    fn hit_rearms_protection() {
        let g = geom();
        let mut p = PdpPolicy::with_config(
            &g,
            PdpConfig {
                initial_pd: 15,
                compute_period: u64::MAX,
                ..PdpConfig::default()
            },
        );
        p.on_fill(0, 3, &ctx_for(0));
        for _ in 0..10 {
            p.on_miss(0, &ctx_for(1 << 20));
        }
        let decayed = p.rpd[3];
        assert!(decayed < p.rpd_max);
        p.on_hit(0, 3, &ctx_for(0));
        assert_eq!(p.rpd[3], p.rpd_max);
    }

    #[test]
    fn sampler_builds_histogram() {
        let g = geom();
        let mut p = PdpPolicy::new(&g);
        // Set 0 is sampled (stride 64). Re-reference one block every 4
        // accesses to set 0.
        let blk = 0u64; // maps to set 0
        for _ in 0..100 {
            p.on_miss(0, &ctx_for(blk << 6));
            for f in 1..4u64 {
                p.on_miss(0, &ctx_for((f << 40) | (blk << 6)));
            }
        }
        assert!(p.total_sampled > 0, "sampler recorded reuses");
        assert!(p.hist[3] > 0, "reuse distance 4 observed");
    }

    #[test]
    fn pd_computation_picks_reuse_sweet_spot() {
        let g = geom();
        let mut p = PdpPolicy::new(&g);
        // Synthetic histogram: strong reuse at distance 8, nothing after.
        p.hist[7] = 1000;
        p.total_sampled = 1200; // 200 never-reused samples
        let pd = p.compute_pd();
        assert_eq!(pd, 8, "protecting exactly through distance 8 maximizes E");
    }

    #[test]
    fn pd_computation_ignores_unreachable_tail() {
        let g = geom();
        let mut p = PdpPolicy::new(&g);
        // Bimodal: cheap reuse at 2, expensive reuse at 200.
        p.hist[1] = 1000;
        p.hist[199] = 10;
        p.total_sampled = 1010;
        let pd = p.compute_pd();
        assert_eq!(pd, 2, "distant trickle not worth 100x occupancy");
    }

    #[test]
    fn streaming_scan_cannot_displace_protected_working_set() {
        // Working set fits; scan blocks arrive unprotected-ish and get
        // evicted once their (short) protection lapses, like DRRIP's
        // scan resistance but via distances.
        let g = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let mut pdp = SetAssocCache::new(g, Box::new(PdpPolicy::new(&g)));
        let mut lru = SetAssocCache::new(g, Box::new(crate::lru::TrueLru::new(&g)));
        let ws = 256u64;
        let mut scan = 1 << 20;
        for _ in 0..300 {
            for b in 0..ws {
                pdp.access_block(b, &ctx_for(b << 6));
                lru.access_block(b, &ctx_for(b << 6));
            }
            for _ in 0..512 {
                pdp.access_block(scan, &ctx_for(scan << 6));
                lru.access_block(scan, &ctx_for(scan << 6));
                scan += 1;
            }
        }
        assert!(
            pdp.stats().misses < lru.stats().misses,
            "PDP {} vs LRU {}",
            pdp.stats().misses,
            lru.stats().misses
        );
    }

    #[test]
    fn storage_accounting() {
        let p = PdpPolicy::new(&geom());
        assert_eq!(
            p.bits_per_set(),
            16 * 4 + 8,
            "4 bits/line plus tick counter"
        );
        assert!(
            p.global_bits() > 0,
            "sampler and histogram are global state"
        );
    }

    #[test]
    #[should_panic(expected = "rpd_bits")]
    fn rejects_zero_width_counters() {
        let _ = PdpPolicy::with_config(
            &geom(),
            PdpConfig {
                rpd_bits: 0,
                ..Default::default()
            },
        );
    }
}
