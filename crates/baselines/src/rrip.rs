//! The RRIP family: SRRIP, BRRIP, and DRRIP (Jaleel et al., ISCA 2010).
//!
//! Each block carries an `m`-bit re-reference prediction value (RRPV): 0
//! means "re-referenced soon", `2^m - 1` means "re-referenced in the distant
//! future". The victim is a block predicted distant; hits reset a block's
//! RRPV to 0 (hit-priority promotion). SRRIP inserts at `max - 1` ("long"),
//! BRRIP usually at `max` with an occasional `max - 1`; DRRIP set-duels the
//! two. With the paper's 2-bit RRPVs, DRRIP costs 32 bits/set — the policy
//! the paper calls "the most efficient of the published high-performance
//! cache replacement schemes", and which GIPPR halves again.

use sim_core::dueling::{DuelController, DuelingError};
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// RRPV width used throughout (the RRIP paper's recommended 2 bits).
pub const RRPV_BITS: u32 = 2;

/// BRRIP inserts "long" instead of "distant" once per this many fills.
const BRRIP_EPSILON: u64 = 32;

/// Shared RRPV array logic for all three policies.
#[derive(Debug, Clone)]
struct RrpvTable {
    rrpv: Vec<u8>,
    ways: usize,
    max: u8,
}

impl RrpvTable {
    fn new(geom: &CacheGeometry) -> Self {
        let max = ((1u16 << RRPV_BITS) - 1) as u8;
        RrpvTable {
            // Start every (invalid) line at max so cold sets victimize way 0
            // deterministically.
            rrpv: vec![max; geom.sets() * geom.ways()],
            ways: geom.ways(),
            max,
        }
    }

    /// SRRIP victim search: find the first block with RRPV == max,
    /// incrementing all RRPVs until one exists.
    #[inline]
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == self.max) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn set(&mut self, set: usize, way: usize, value: u8) {
        self.rrpv[set * self.ways + way] = value;
    }

    fn get(&self, set: usize, way: usize) -> u8 {
        self.rrpv[set * self.ways + way]
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::rrip_bits_per_set(self.ways, RRPV_BITS)
    }

    fn set_digest(&self, set: usize) -> Vec<u8> {
        let base = set * self.ways;
        self.rrpv[base..base + self.ways].to_vec()
    }

    fn check_bounds(&self) -> Result<(), String> {
        match self.rrpv.iter().position(|&v| v > self.max) {
            Some(idx) => Err(format!(
                "RRPV {} at line {idx} exceeds max {} ({}-bit field)",
                self.rrpv[idx], self.max, RRPV_BITS
            )),
            None => Ok(()),
        }
    }
}

/// Static RRIP: insert with RRPV `max - 1`, promote hits to 0.
#[derive(Debug, Clone)]
pub struct SrripPolicy {
    table: RrpvTable,
}

impl SrripPolicy {
    /// Creates SRRIP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        SrripPolicy {
            table: RrpvTable::new(geom),
        }
    }

    /// Current RRPV of a line (test/diagnostic aid).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.table.get(set, way)
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn name(&self) -> &str {
        "SRRIP"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.table.victim(set)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.table.set(set, way, 0);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.table.set(set, way, self.table.max - 1);
    }

    fn bits_per_set(&self) -> u64 {
        self.table.bits_per_set()
    }

    // Pure per-set RRPV state. (BRRIP/DRRIP stay `Global`: the bimodal
    // `tick` and the PSEL duel observe the whole-stream miss sequence.)
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    // SRRIP as an RRIP vector: hits promote to 0, fills insert at max - 1.
    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::RripIpv {
            vector: [0, 0, 0, 0, self.table.max - 1],
        })
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.table.set_digest(set))
    }

    fn audit_invariants(&self) -> Result<(), String> {
        self.table.check_bounds()
    }
}

/// Bimodal RRIP: insert with RRPV `max`, occasionally (1/32) `max - 1`.
#[derive(Debug, Clone)]
pub struct BrripPolicy {
    table: RrpvTable,
    tick: u64,
}

impl BrripPolicy {
    /// Creates BRRIP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        BrripPolicy {
            table: RrpvTable::new(geom),
            tick: 0,
        }
    }
}

impl ReplacementPolicy for BrripPolicy {
    fn name(&self) -> &str {
        "BRRIP"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.table.victim(set)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.table.set(set, way, 0);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.tick += 1;
        let value = if self.tick % BRRIP_EPSILON == 0 {
            self.table.max - 1
        } else {
            self.table.max
        };
        self.table.set(set, way, value);
    }

    fn bits_per_set(&self) -> u64 {
        self.table.bits_per_set()
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.table.set_digest(set))
    }

    // The bimodal tick influences behaviour only through `tick mod epsilon`,
    // so digesting the residue keeps the state space finite without merging
    // distinguishable states.
    fn audit_global_digest(&self) -> Vec<u8> {
        (self.tick % BRRIP_EPSILON).to_le_bytes().to_vec()
    }

    fn audit_invariants(&self) -> Result<(), String> {
        self.table.check_bounds()
    }
}

/// Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion on one
/// shared RRPV array, with a 10-bit PSEL counter.
#[derive(Debug, Clone)]
pub struct DrripPolicy {
    table: RrpvTable,
    duel: DuelController,
    tick: u64,
}

impl DrripPolicy {
    /// Creates DRRIP with 32 leader sets per policy and a 10-bit PSEL.
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] if the geometry cannot host the leader
    /// layout.
    pub fn new(geom: &CacheGeometry) -> Result<Self, DuelingError> {
        Self::with_config(geom, 32, 10)
    }

    /// Fully configurable constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DuelingError`] if the geometry cannot host the leader
    /// layout.
    pub fn with_config(
        geom: &CacheGeometry,
        leaders_per_policy: usize,
        psel_bits: u32,
    ) -> Result<Self, DuelingError> {
        Ok(DrripPolicy {
            table: RrpvTable::new(geom),
            duel: DuelController::two(geom.sets(), leaders_per_policy, psel_bits)?,
            tick: 0,
        })
    }

    /// Which insertion policy (0 = SRRIP, 1 = BRRIP) followers use.
    pub fn winner(&self) -> usize {
        self.duel.winner()
    }
}

impl ReplacementPolicy for DrripPolicy {
    fn name(&self) -> &str {
        "DRRIP"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        self.table.victim(set)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.table.set(set, way, 0);
    }

    #[inline]
    fn on_miss(&mut self, set: usize, _ctx: &AccessContext) {
        self.duel.record_miss(set);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let value = if self.duel.policy_for_set(set) == 0 {
            self.table.max - 1 // SRRIP insertion
        } else {
            self.tick += 1;
            if self.tick % BRRIP_EPSILON == 0 {
                self.table.max - 1
            } else {
                self.table.max
            }
        };
        self.table.set(set, way, value);
    }

    fn bits_per_set(&self) -> u64 {
        self.table.bits_per_set()
    }

    fn global_bits(&self) -> u64 {
        self.duel.counter_bits()
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        Some(self.table.set_digest(set))
    }

    fn audit_global_digest(&self) -> Vec<u8> {
        let mut d = self.duel.audit_digest();
        d.extend_from_slice(&(self.tick % BRRIP_EPSILON).to_le_bytes());
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        self.table.check_bounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::dueling::SetRole;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(1024, 16, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn srrip_inserts_long_and_promotes_to_zero() {
        let g = geom();
        let mut p = SrripPolicy::new(&g);
        p.on_fill(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 2, "insert at max-1 = 2");
        p.on_hit(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 0);
    }

    #[test]
    fn srrip_victim_ages_set_until_distant_found() {
        let g = geom();
        let mut p = SrripPolicy::new(&g);
        for w in 0..16 {
            p.on_fill(0, w, &ctx()); // everyone at RRPV 2
        }
        let v = p.victim(0, &ctx());
        assert_eq!(v, 0, "aging makes all distant; first way wins");
        assert_eq!(p.rrpv(0, 5), 3, "other lines aged to max");
    }

    #[test]
    fn srrip_prefers_existing_distant_block() {
        let g = geom();
        let mut p = SrripPolicy::new(&g);
        for w in 0..16 {
            p.on_fill(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx()); // way 0 at 0
        let _ = p.victim(0, &ctx()); // ages set: way 0 -> 1, others -> 3
        p.on_fill(0, 1, &ctx()); // way 1 now at 2
        assert_eq!(
            p.victim(0, &ctx()),
            2,
            "first block at max wins, not ways 0/1"
        );
    }

    #[test]
    fn brrip_rarely_inserts_long() {
        let g = geom();
        let mut p = BrripPolicy::new(&g);
        let mut long_inserts = 0;
        for i in 0..320 {
            p.on_fill(0, i % 16, &ctx());
            if p.table.get(0, i % 16) == 2 {
                long_inserts += 1;
            }
        }
        assert_eq!(long_inserts, 10, "exactly 1/32 of fills are long");
    }

    #[test]
    fn drrip_storage_matches_paper() {
        let p = DrripPolicy::new(&geom()).unwrap();
        assert_eq!(p.bits_per_set(), 32, "2 bits x 16 ways");
        assert_eq!(p.global_bits(), 10);
    }

    #[test]
    fn drrip_duel_converges() {
        let g = geom();
        let mut p = DrripPolicy::new(&g).unwrap();
        let map = *p.duel.leader_map();
        for _ in 0..300 {
            for s in 0..g.sets() {
                if map.role(s) == SetRole::Leader(1) {
                    p.on_miss(s, &ctx());
                }
            }
        }
        assert_eq!(p.winner(), 0, "BRRIP leaders missing more selects SRRIP");
    }

    #[test]
    fn drrip_scan_resistance_beats_lru_on_streaming_mix() {
        // A small working set plus an endless scan: DRRIP should hold on to
        // the working set much better than LRU.
        let g = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let mut drrip = SetAssocCache::new(g, Box::new(DrripPolicy::new(&g).unwrap()));
        let mut lru = SetAssocCache::new(g, Box::new(crate::lru::TrueLru::new(&g)));
        let ws_blocks = 256u64; // half the 512-block cache
        let mut scan = 10_000u64;
        for round in 0..400 {
            for b in 0..ws_blocks {
                drrip.access_block(b, &ctx());
                lru.access_block(b, &ctx());
            }
            // A scan long enough to destroy an LRU-managed working set.
            if round % 2 == 0 {
                for _ in 0..1024 {
                    drrip.access_block(scan, &ctx());
                    lru.access_block(scan, &ctx());
                    scan += 1;
                }
            }
        }
        assert!(
            drrip.stats().misses < lru.stats().misses,
            "DRRIP {} vs LRU {} misses",
            drrip.stats().misses,
            lru.stats().misses
        );
    }
}
