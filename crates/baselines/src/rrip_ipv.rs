//! IPV-driven RRIP: the paper's future-work item 5 ("it may be adapted to
//! other LRU-like algorithms such as RRIP"), implemented.
//!
//! An RRIP cache's per-block state is a 2-bit re-reference prediction
//! value, i.e. a coarse 4-position "recency stack" that many blocks share.
//! The insertion/promotion generalization carries over directly: a hit on
//! a block with RRPV `i` rewrites it to `V[i]` instead of always 0, and an
//! incoming block is installed with RRPV `V[max+1]` instead of always
//! `max−1`. SRRIP is the special case `V = [0, 0, 0, 0, 2]`; BRRIP's
//! bimodal insertion has no IPV equivalent (IPVs are deterministic).

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};
use std::error::Error;
use std::fmt;

/// RRPV width (2 bits, as everywhere in this workspace).
const RRPV_BITS: u32 = 2;
/// Number of RRPV levels (4).
const LEVELS: usize = 1 << RRPV_BITS;

/// Error constructing an [`RripIpvPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RripIpvError {
    /// The vector must have `LEVELS + 1` entries.
    WrongLength(usize),
    /// An entry exceeds the maximum RRPV.
    ValueOutOfRange {
        /// Index of the bad entry.
        index: usize,
        /// The offending value.
        value: u8,
    },
}

impl fmt::Display for RripIpvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RripIpvError::WrongLength(n) => {
                write!(f, "RRIP IPV needs {} entries, got {n}", LEVELS + 1)
            }
            RripIpvError::ValueOutOfRange { index, value } => {
                write!(
                    f,
                    "RRIP IPV entry {index} is {value}, above max RRPV {}",
                    LEVELS - 1
                )
            }
        }
    }
}

impl Error for RripIpvError {}

/// An RRIP cache whose promotion and insertion RRPVs come from a 5-entry
/// vector `V[0..=4]`: `V[i]` is the RRPV a block hit at RRPV `i` receives,
/// `V[4]` the insertion RRPV.
///
/// # Example
///
/// ```
/// use baselines::rrip_ipv::RripIpvPolicy;
/// use sim_core::CacheGeometry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let geom = CacheGeometry::new(128 * 1024, 16, 64)?;
/// // SRRIP expressed as an IPV.
/// let srrip = RripIpvPolicy::new(&geom, [0, 0, 0, 0, 2])?;
/// // A "cautious promotion" variant: blocks climb one level per hit.
/// let cautious = RripIpvPolicy::new(&geom, [0, 0, 1, 2, 3])?;
/// # let _ = (srrip, cautious);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RripIpvPolicy {
    vector: [u8; LEVELS + 1],
    rrpv: Vec<u8>,
    ways: usize,
}

impl RripIpvPolicy {
    /// Creates the policy, validating every vector entry.
    ///
    /// # Errors
    ///
    /// Returns [`RripIpvError::ValueOutOfRange`] if an entry exceeds the
    /// maximum RRPV (3).
    pub fn new(geom: &CacheGeometry, vector: [u8; LEVELS + 1]) -> Result<Self, RripIpvError> {
        if let Some((index, &value)) = vector
            .iter()
            .enumerate()
            .find(|(_, &v)| usize::from(v) >= LEVELS)
        {
            return Err(RripIpvError::ValueOutOfRange { index, value });
        }
        Ok(RripIpvPolicy {
            vector,
            rrpv: vec![(LEVELS - 1) as u8; geom.sets() * geom.ways()],
            ways: geom.ways(),
        })
    }

    /// The SRRIP-equivalent vector.
    pub fn srrip_vector() -> [u8; LEVELS + 1] {
        [0, 0, 0, 0, (LEVELS - 2) as u8]
    }

    /// Current RRPV of a line (test/diagnostic aid).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.rrpv[set * self.ways + way]
    }

    /// Full static analysis of this vector, mirroring `gippr::Ipv::analysis`.
    ///
    /// An RRIP IPV is a 4-level recency vector plus an insertion entry —
    /// exactly the shape `sim_lint::analyze` accepts, with RRPV levels
    /// standing in for stack positions. Construction enforces the
    /// analyzer's range rules, so this cannot fail.
    pub fn analysis(&self) -> sim_lint::IpvAnalysis {
        sim_lint::analyze(&self.vector)
            .expect("RripIpvPolicy construction enforces the analyzer's well-formedness rules")
    }
}

impl ReplacementPolicy for RripIpvPolicy {
    fn name(&self) -> &str {
        "RRIP-IPV"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        let max = (LEVELS - 1) as u8;
        loop {
            if let Some(w) = (0..self.ways).find(|&w| self.rrpv[base + w] == max) {
                return w;
            }
            for w in 0..self.ways {
                self.rrpv[base + w] += 1;
            }
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let idx = set * self.ways + way;
        self.rrpv[idx] = self.vector[usize::from(self.rrpv[idx])];
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.rrpv[set * self.ways + way] = self.vector[LEVELS];
    }

    fn bits_per_set(&self) -> u64 {
        sim_core::overhead::rrip_bits_per_set(self.ways, RRPV_BITS)
    }

    // The vector is read-only configuration; mutable state is per-set RRPVs.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    fn slice_kernel(&self) -> Option<sim_core::slice::SliceKernel> {
        Some(sim_core::slice::SliceKernel::RripIpv {
            vector: self.vector,
        })
    }

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        Some(self.rrpv[base..base + self.ways].to_vec())
    }

    fn audit_invariants(&self) -> Result<(), String> {
        match self.rrpv.iter().position(|&r| usize::from(r) >= LEVELS) {
            Some(idx) => Err(format!(
                "RRIP-IPV RRPV {} at line {idx} exceeds max {}",
                self.rrpv[idx],
                LEVELS - 1
            )),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrip::SrripPolicy;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(16, 8, 64).unwrap()
    }

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn rejects_out_of_range_entry() {
        assert!(matches!(
            RripIpvPolicy::new(&geom(), [0, 0, 0, 0, 4]),
            Err(RripIpvError::ValueOutOfRange { index: 4, value: 4 })
        ));
    }

    #[test]
    fn srrip_vector_matches_srrip_policy() {
        let g = geom();
        let mut ipv = SetAssocCache::new(
            g,
            Box::new(RripIpvPolicy::new(&g, RripIpvPolicy::srrip_vector()).unwrap()),
        );
        let mut srrip = SetAssocCache::new(g, Box::new(SrripPolicy::new(&g)));
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let blk = x % 512;
            let a = ipv.access_block(blk, &ctx());
            let b = srrip.access_block(blk, &ctx());
            assert_eq!(a, b, "block {blk}");
        }
    }

    #[test]
    fn promotion_vector_is_respected() {
        let g = geom();
        let mut p = RripIpvPolicy::new(&g, [0, 0, 1, 2, 3]).unwrap();
        p.on_fill(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 3, "insertion at V[4] = 3");
        p.on_hit(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 2, "hit at 3 promotes to V[3] = 2");
        p.on_hit(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 1, "hit at 2 promotes to V[2] = 1");
        p.on_hit(0, 3, &ctx());
        assert_eq!(p.rrpv(0, 3), 0);
    }

    #[test]
    fn distant_insertion_vector_resists_scans() {
        // Insert at max (immediately evictable) with full promotion: the
        // RRIP analogue of LIP.
        let g = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let lip_like = RripIpvPolicy::new(&g, [0, 0, 0, 0, 3]).unwrap();
        let srrip = SrripPolicy::new(&g);
        let mut a = SetAssocCache::new(g, Box::new(lip_like));
        let mut b = SetAssocCache::new(g, Box::new(srrip));
        // Loop 1.5x capacity: distant insertion retains a resident core.
        for _ in 0..40 {
            for blk in 0..768u64 {
                a.access_block(blk, &ctx());
                b.access_block(blk, &ctx());
            }
        }
        assert!(
            a.stats().hits > b.stats().hits,
            "RRIP-LIP {} vs SRRIP {} hits",
            a.stats().hits,
            b.stats().hits
        );
    }

    #[test]
    fn storage_is_plain_rrip() {
        let p = RripIpvPolicy::new(&geom(), RripIpvPolicy::srrip_vector()).unwrap();
        assert_eq!(p.bits_per_set(), 16);
        assert_eq!(p.global_bits(), 0);
    }

    #[test]
    fn srrip_vector_analysis_verdict_is_pinned() {
        // [0, 0, 0, 0 | 2]: inserts at RRPV 2 of 3 — distant insertion is
        // the whole point of RRIP, and the analyzer agrees it is the
        // LIP-family mechanism. Any hit promotes straight to 0, so no
        // demotion, oscillation, or dead-level lints fire.
        let a = RripIpvPolicy::new(&geom(), RripIpvPolicy::srrip_vector())
            .unwrap()
            .analysis();
        assert_eq!(a.class(), sim_lint::IpvClass::ThrashResistant);
        assert!(a.lints().is_empty(), "{:?}", a.lints());
        assert_eq!(a.reachable_positions(), vec![0, 1, 2, 3]);
        assert!(a.converges_to_fixpoint());
    }

    #[test]
    fn cautious_vector_analysis_verdict_is_pinned() {
        // [0, 0, 1, 2 | 3]: inserts at max RRPV (immediately evictable —
        // the analyzer's inserts-at-victim lint) and climbs one level per
        // hit. Still thrash-resistant, still convergent, no dead levels.
        let a = RripIpvPolicy::new(&geom(), [0, 0, 1, 2, 3])
            .unwrap()
            .analysis();
        assert_eq!(a.class(), sim_lint::IpvClass::ThrashResistant);
        assert_eq!(a.lints(), [sim_lint::IpvLint::InsertsAtVictim]);
        assert_eq!(a.reachable_positions(), vec![0, 1, 2, 3]);
        assert!(a.converges_to_fixpoint());
    }

    #[test]
    fn audit_hooks_expose_rrpv_state() {
        let g = geom();
        let mut p = RripIpvPolicy::new(&g, RripIpvPolicy::srrip_vector()).unwrap();
        assert!(p.audit_invariants().is_ok());
        let before = p.audit_set_digest(2).unwrap();
        p.on_fill(2, 0, &ctx());
        let after = p.audit_set_digest(2).unwrap();
        assert_ne!(before, after, "fill must show up in the set digest");
        assert_eq!(after.len(), g.ways());
        assert!(p.audit_invariants().is_ok());
    }

    #[test]
    fn error_display() {
        assert!(!RripIpvError::WrongLength(3).to_string().is_empty());
        assert!(!RripIpvError::ValueOutOfRange { index: 0, value: 9 }
            .to_string()
            .is_empty());
    }
}
