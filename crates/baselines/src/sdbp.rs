//! SDBP: sampling dead block prediction (Khan, Tian & Jiménez, MICRO
//! 2010) — the related-work line the comparison paper cites for
//! dead-block-driven replacement ("dead block prediction can be used to
//! drive replacement policy by evicting predicted dead blocks, but the
//! implementation is costly in terms of state and/or the requirement that
//! the address of memory instructions be passed to the LLC").
//!
//! A *sampler* watches a few sets and learns, per memory-instruction PC,
//! whether blocks last touched by that PC tend to die (be evicted without
//! reuse). A skewed three-table predictor stores the learning; each cache
//! line carries one predicted-dead bit, refreshed on every touch. The
//! victim is any predicted-dead block, falling back to tree PseudoLRU.

use gippr::PlruTree;
use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// log2 of each predictor table's entry count.
const TABLE_BITS: u32 = 12;
/// Saturating-counter ceiling per table entry (2-bit counters).
const COUNTER_MAX: u8 = 3;
/// Dead if the three counters sum to at least this.
const DEAD_THRESHOLD: u32 = 8;
/// One in this many sets feeds the sampler.
const SAMPLER_STRIDE: usize = 32;
/// Sampler associativity (partial-tag entries per sampled set).
const SAMPLER_WAYS: usize = 12;

#[derive(Debug, Clone, Copy, Default)]
struct SamplerEntry {
    valid: bool,
    partial_tag: u16,
    pc_sig: u16,
    lru: u8,
}

/// The skewed three-table dead-block predictor.
#[derive(Debug, Clone)]
struct Predictor {
    tables: [Vec<u8>; 3],
}

impl Predictor {
    fn new() -> Self {
        Predictor {
            tables: std::array::from_fn(|_| vec![0; 1 << TABLE_BITS]),
        }
    }

    fn indices(sig: u16) -> [usize; 3] {
        let s = u64::from(sig);
        [
            (s.wrapping_mul(0x9e37_79b9) >> 16) as usize & ((1 << TABLE_BITS) - 1),
            (s.wrapping_mul(0x85eb_ca6b) >> 14) as usize & ((1 << TABLE_BITS) - 1),
            (s.wrapping_mul(0xc2b2_ae35) >> 12) as usize & ((1 << TABLE_BITS) - 1),
        ]
    }

    fn train(&mut self, sig: u16, dead: bool) {
        for (t, i) in self.tables.iter_mut().zip(Self::indices(sig)) {
            if dead {
                t[i] = (t[i] + 1).min(COUNTER_MAX);
            } else {
                t[i] = t[i].saturating_sub(1);
            }
        }
    }

    fn predict_dead(&self, sig: u16) -> bool {
        let sum: u32 = self
            .tables
            .iter()
            .zip(Self::indices(sig))
            .map(|(t, i)| u32::from(t[i]))
            .sum();
        sum >= DEAD_THRESHOLD
    }
}

/// Dead-block-driven replacement on a PLRU substrate.
///
/// # Example
///
/// ```
/// use baselines::sdbp::SdbpPolicy;
/// use sim_core::{Access, CacheGeometry, SetAssocCache};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(128 * 1024, 16, 64)?;
/// let mut llc = SetAssocCache::new(geom, Box::new(SdbpPolicy::new(&geom)));
/// llc.access(&Access::read(0x1000, 0x400));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SdbpPolicy {
    trees: Vec<PlruTree>,
    dead: Vec<bool>,
    ways: usize,
    line_shift: u32,
    predictor: Predictor,
    sampler: Vec<[SamplerEntry; SAMPLER_WAYS]>,
}

impl SdbpPolicy {
    /// Creates SDBP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        let sampled = geom.sets().div_ceil(SAMPLER_STRIDE);
        SdbpPolicy {
            trees: vec![PlruTree::new(geom.ways()); geom.sets()],
            dead: vec![false; geom.sets() * geom.ways()],
            ways: geom.ways(),
            line_shift: geom.line_bytes().trailing_zeros(),
            predictor: Predictor::new(),
            sampler: vec![[SamplerEntry::default(); SAMPLER_WAYS]; sampled],
        }
    }

    /// The PC signature used to index the predictor.
    pub fn signature_of(pc: u64) -> u16 {
        ((pc >> 2) ^ (pc >> 18) ^ (pc >> 34)) as u16
    }

    /// Whether the predictor currently believes `pc`'s blocks die.
    pub fn predicts_dead(&self, pc: u64) -> bool {
        self.predictor.predict_dead(Self::signature_of(pc))
    }

    fn sample(&mut self, set: usize, ctx: &AccessContext) {
        if set % SAMPLER_STRIDE != 0 {
            return;
        }
        let entries = &mut self.sampler[set / SAMPLER_STRIDE];
        let tag = ((ctx.addr >> self.line_shift) >> 8) as u16;
        let sig = Self::signature_of(ctx.pc);
        if let Some(idx) = entries.iter().position(|e| e.valid && e.partial_tag == tag) {
            // Sampler hit: the previous toucher was not dead.
            let prev_sig = entries[idx].pc_sig;
            self.predictor.train(prev_sig, false);
            entries[idx].pc_sig = sig;
            let old = entries[idx].lru;
            for e in entries.iter_mut() {
                if e.valid && e.lru < old {
                    e.lru += 1;
                }
            }
            entries[idx].lru = 0;
            return;
        }
        // Sampler miss: evict the sampler-LRU entry, training its last
        // toucher as dead.
        let victim = (0..SAMPLER_WAYS)
            .find(|&i| !entries[i].valid)
            .unwrap_or_else(|| {
                (0..SAMPLER_WAYS)
                    .max_by_key(|&i| entries[i].lru)
                    .expect("sampler has entries")
            });
        if entries[victim].valid {
            let dead_sig = entries[victim].pc_sig;
            self.predictor.train(dead_sig, true);
        }
        for e in entries.iter_mut() {
            if e.valid {
                e.lru = e.lru.saturating_add(1);
            }
        }
        entries[victim] = SamplerEntry {
            valid: true,
            partial_tag: tag,
            pc_sig: sig,
            lru: 0,
        };
    }
}

impl ReplacementPolicy for SdbpPolicy {
    fn name(&self) -> &str {
        "SDBP"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        // Predicted-dead block first; else PseudoLRU.
        (0..self.ways)
            .find(|&w| self.dead[base + w])
            .unwrap_or_else(|| self.trees[set].victim())
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        self.sample(set, ctx);
        self.trees[set].promote(way);
        self.dead[set * self.ways + way] = self.predicts_dead(ctx.pc);
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessContext) {
        self.sample(set, ctx);
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        self.trees[set].promote(way);
        self.dead[set * self.ways + way] = self.predicts_dead(ctx.pc);
    }

    fn bits_per_set(&self) -> u64 {
        // PLRU bits plus one dead bit per line.
        self.trees[0].bit_count() + self.ways as u64
    }

    fn global_bits(&self) -> u64 {
        let tables = 3 * (1u64 << TABLE_BITS) * 2;
        let sampler = self.sampler.len() as u64 * SAMPLER_WAYS as u64 * (1 + 16 + 16 + 4);
        tables + sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 8, 64).unwrap()
    }

    fn ctx(addr: u64, pc: u64) -> AccessContext {
        AccessContext {
            pc,
            addr,
            is_write: false,
        }
    }

    #[test]
    fn predictor_trains_toward_dead_and_back() {
        let mut p = Predictor::new();
        let sig = 0x1234;
        assert!(!p.predict_dead(sig), "fresh predictor says alive");
        for _ in 0..4 {
            p.train(sig, true);
        }
        assert!(p.predict_dead(sig));
        for _ in 0..4 {
            p.train(sig, false);
        }
        assert!(!p.predict_dead(sig));
    }

    #[test]
    fn streaming_pc_becomes_predicted_dead() {
        let g = geom();
        let mut p = SdbpPolicy::new(&g);
        let stream_pc = 0x4000u64;
        // Stream distinct blocks through sampled set 0: every sampler
        // eviction trains "dead".
        for i in 0..2000u64 {
            let addr = i << 14; // all map to set 0 region, distinct tags
            p.on_miss(0, &ctx(addr, stream_pc));
        }
        assert!(p.predicts_dead(stream_pc));
    }

    #[test]
    fn reused_pc_stays_alive() {
        let g = geom();
        let mut p = SdbpPolicy::new(&g);
        let loop_pc = 0x8000u64;
        // Touch the same 4 blocks over and over in sampled set 0.
        for i in 0..2000u64 {
            let addr = (i % 4) << 14;
            p.on_miss(0, &ctx(addr, loop_pc));
        }
        assert!(!p.predicts_dead(loop_pc));
    }

    #[test]
    fn predicted_dead_blocks_are_victimized_first() {
        let g = geom();
        let mut p = SdbpPolicy::new(&g);
        // Force the predictor to call pc_dead dead.
        let dead_pc = 0xdead0u64;
        let sig = SdbpPolicy::signature_of(dead_pc);
        for _ in 0..4 {
            p.predictor.train(sig, true);
        }
        // Fill set 3: way 5 filled by the dead PC, others by a live PC.
        for w in 0..8 {
            let pc = if w == 5 { dead_pc } else { 0x10 };
            p.on_fill(3, w, &ctx(0, pc));
        }
        assert_eq!(p.victim(3, &ctx(0, 0)), 5);
    }

    #[test]
    fn falls_back_to_plru_when_nothing_dead() {
        let g = geom();
        let mut p = SdbpPolicy::new(&g);
        for w in 0..8 {
            p.on_fill(2, w, &ctx(0, 0x10));
        }
        let v = p.victim(2, &ctx(0, 0));
        assert_eq!(p.trees[2].position(v), 7, "PLRU fallback victim");
    }

    #[test]
    fn beats_plain_plru_on_scan_mix() {
        let g = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let mut sdbp = SetAssocCache::new(g, Box::new(SdbpPolicy::new(&g)));
        let mut plru = SetAssocCache::new(g, Box::new(gippr::PlruPolicy::new(&g)));
        let loop_pc = 0x10u64;
        let scan_pc = 0x20u64;
        let ws = 384u64;
        let mut scan = 1 << 24;
        for _ in 0..150 {
            for b in 0..ws {
                let c = AccessContext {
                    pc: loop_pc,
                    addr: b << 6,
                    is_write: false,
                };
                sdbp.access_block(b, &c);
                plru.access_block(b, &c);
            }
            for _ in 0..256 {
                let c = AccessContext {
                    pc: scan_pc,
                    addr: scan << 6,
                    is_write: false,
                };
                sdbp.access_block(scan, &c);
                plru.access_block(scan, &c);
                scan += 1;
            }
        }
        assert!(
            sdbp.stats().misses <= plru.stats().misses,
            "SDBP {} vs PLRU {}",
            sdbp.stats().misses,
            plru.stats().misses
        );
    }

    #[test]
    fn storage_accounting() {
        let p = SdbpPolicy::new(&geom());
        assert_eq!(p.bits_per_set(), 7 + 8, "PLRU bits + dead bits");
        assert!(p.global_bits() > 3 * 4096 * 2, "tables plus sampler");
    }
}
