//! EHC: Expected-Hit-Count replacement (Vakil-Ghahani et al., CAL 2018;
//! arXiv 1808.05024).
//!
//! EHC observes that reuse *distance* is a proxy — what a replacement
//! decision actually wants is the number of hits a line will deliver
//! before it goes dead. A global Expected-Hit-Count Table (EHCT),
//! indexed by a hash of the filling instruction's PC, learns per
//! signature how many hits lines from that instruction typically see in
//! one residency. The victim is the line with the fewest *remaining*
//! expected hits (expectation minus hits already delivered); the table
//! is trained on eviction with the line's observed hit count. Like
//! SHiP, this needs the memory instruction's PC at the LLC — the extra
//! channel GIPPR deliberately avoids — so it rides in the roster as a
//! related-work baseline, not a contender under the paper's constraints.

#![forbid(unsafe_code)]

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// log2 of the EHCT size.
const EHCT_BITS: u32 = 12;
/// Hit-count ceiling (4-bit counters, per the paper's small-counter
/// design point).
const HITS_MAX: u8 = 15;

/// Expected-Hit-Count replacement over a PC-signature table.
///
/// Per-line state: the fill signature and a saturating hit counter.
/// Global state: the EHCT, trained on eviction with an exponential
/// moving average (new = (old + observed) / 2, rounding up) so one
/// outlier residency cannot erase a learned expectation.
#[derive(Debug, Clone)]
pub struct EhcPolicy {
    ways: usize,
    signature: Vec<u16>,
    hits: Vec<u8>,
    ehct: Vec<u8>,
}

impl EhcPolicy {
    /// Creates EHC for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        let lines = geom.sets() * geom.ways();
        EhcPolicy {
            ways: geom.ways(),
            signature: vec![0; lines],
            hits: vec![0; lines],
            // Optimistic start: unseen signatures expect one hit, so new
            // instructions aren't evicted on sight.
            ehct: vec![1; 1 << EHCT_BITS],
        }
    }

    /// The EHCT signature for a memory instruction PC.
    pub fn signature_of(pc: u64) -> u16 {
        let folded = (pc >> 2) ^ (pc >> 14) ^ (pc >> 33);
        (folded & ((1 << EHCT_BITS) - 1)) as u16
    }

    /// Current learned expectation for a signature (diagnostic aid).
    pub fn expected_hits(&self, sig: u16) -> u8 {
        self.ehct[usize::from(sig)]
    }

    /// Hits this line still owes per its signature's expectation.
    #[inline]
    fn remaining(&self, idx: usize) -> u8 {
        self.ehct[usize::from(self.signature[idx])].saturating_sub(self.hits[idx])
    }
}

impl ReplacementPolicy for EhcPolicy {
    fn name(&self) -> &str {
        "EHC"
    }

    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        // Fewest remaining expected hits loses; ties fall to the lowest
        // way, matching the deterministic scan order used elsewhere.
        (0..self.ways)
            .min_by_key(|&w| self.remaining(base + w))
            .expect("ways > 0")
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        let idx = set * self.ways + way;
        self.hits[idx] = (self.hits[idx] + 1).min(HITS_MAX);
    }

    fn on_evict(&mut self, set: usize, way: usize) {
        let idx = set * self.ways + way;
        let sig = usize::from(self.signature[idx]);
        // Exponential moving average toward the observed hit count.
        // Truncation matters: a signature that stops being reused must
        // be able to decay all the way to zero.
        self.ehct[sig] = (self.ehct[sig] + self.hits[idx]) / 2;
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessContext) {
        let idx = set * self.ways + way;
        self.signature[idx] = Self::signature_of(ctx.pc);
        self.hits[idx] = 0;
    }

    fn bits_per_set(&self) -> u64 {
        // Full signature + 4-bit hit counter per line (like SHiP we store
        // the signature unhashed and account honestly — an upper bound).
        self.ways as u64 * (u64::from(EHCT_BITS) + 4)
    }

    fn global_bits(&self) -> u64 {
        (1u64 << EHCT_BITS) * 4
    }

    // The EHCT is one table shared by every set and trained on evictions
    // from all of them; sharding would split its training stream.
    // Default ShardAffinity::Global is correct and load-bearing.

    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        let mut d = Vec::with_capacity(self.ways * 3);
        for idx in base..base + self.ways {
            d.extend_from_slice(&self.signature[idx].to_le_bytes());
            d.push(self.hits[idx]);
        }
        Some(d)
    }

    fn audit_global_digest(&self) -> Vec<u8> {
        // Only touched entries can ever differ from the optimistic init
        // value, so a sparse (index, value) digest stays tiny while still
        // distinguishing every reachable table state.
        let mut d = Vec::new();
        for (i, &v) in self.ehct.iter().enumerate() {
            if v != 1 {
                d.extend_from_slice(&(i as u16).to_le_bytes());
                d.push(v);
            }
        }
        d
    }

    fn audit_invariants(&self) -> Result<(), String> {
        if let Some(idx) = self.hits.iter().position(|&h| h > HITS_MAX) {
            return Err(format!(
                "EHC hit counter {} at line {idx} exceeds {HITS_MAX}",
                self.hits[idx]
            ));
        }
        // Init is 1 and training averages toward a value ≤ HITS_MAX, so the
        // expectation can never leave the 4-bit field.
        if let Some(sig) = self.ehct.iter().position(|&e| e > HITS_MAX) {
            return Err(format!(
                "EHCT expectation {} for signature {sig} exceeds {HITS_MAX}",
                self.ehct[sig]
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{ShardAffinity, SliceKernel};

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 16, 64).unwrap()
    }

    fn ctx(pc: u64) -> AccessContext {
        AccessContext {
            pc,
            addr: 0,
            is_write: false,
        }
    }

    #[test]
    fn zero_reuse_signature_decays_and_loses() {
        let g = geom();
        let mut p = EhcPolicy::new(&g);
        let dead_pc = 0x4000u64;
        let warm_pc = 0x8000u64;
        // Train: dead_pc's lines never hit, warm_pc's lines hit a lot.
        for i in 0..8usize {
            p.on_fill(0, i % 16, &ctx(dead_pc));
            p.on_evict(0, i % 16);
        }
        for _ in 0..8usize {
            p.on_fill(0, 0, &ctx(warm_pc));
            for _ in 0..4 {
                p.on_hit(0, 0, &ctx(warm_pc));
            }
            p.on_evict(0, 0);
        }
        assert_eq!(p.expected_hits(EhcPolicy::signature_of(dead_pc)), 0);
        assert!(p.expected_hits(EhcPolicy::signature_of(warm_pc)) >= 3);
        // A set holding one dead-signature line among freshly-filled warm
        // ones (expectation not yet consumed) evicts the dead line.
        for w in 0..16usize {
            p.on_fill(1, w, &ctx(warm_pc));
        }
        p.on_fill(1, 7, &ctx(dead_pc));
        assert_eq!(p.victim(1, &ctx(0)), 7);
    }

    #[test]
    fn delivered_hits_consume_the_expectation() {
        let g = geom();
        let mut p = EhcPolicy::new(&g);
        let pc = 0x1234u64;
        let sig = EhcPolicy::signature_of(pc);
        // Learn an expectation of ~4 hits.
        for _ in 0..6 {
            p.on_fill(0, 0, &ctx(pc));
            for _ in 0..4 {
                p.on_hit(0, 0, &ctx(pc));
            }
            p.on_evict(0, 0);
        }
        let learned = p.expected_hits(sig);
        assert!(learned >= 3, "EMA should approach 4, got {learned}");
        // Two lines, same signature: the one that already delivered its
        // hits has less remaining value and is the victim.
        p.on_fill(2, 0, &ctx(pc));
        p.on_fill(2, 1, &ctx(pc));
        for w in 2..16usize {
            p.on_fill(2, w, &ctx(pc));
            for _ in 0..usize::from(HITS_MAX) {
                p.on_hit(2, w, &ctx(pc));
            }
        }
        for _ in 0..learned {
            p.on_hit(2, 1, &ctx(pc));
        }
        assert_eq!(p.victim(2, &ctx(0)), 1, "spent line loses to fresh line");
    }

    #[test]
    fn training_is_an_ema_not_an_overwrite() {
        let g = geom();
        let mut p = EhcPolicy::new(&g);
        let pc = 0x42u64;
        let sig = EhcPolicy::signature_of(pc);
        for _ in 0..5 {
            p.on_fill(0, 3, &ctx(pc));
            for _ in 0..8 {
                p.on_hit(0, 3, &ctx(pc));
            }
            p.on_evict(0, 3);
        }
        let high = p.expected_hits(sig);
        // One dead residency must not zero the expectation.
        p.on_fill(0, 3, &ctx(pc));
        p.on_evict(0, 3);
        assert!(p.expected_hits(sig) >= high / 2);
        assert!(p.expected_hits(sig) < high);
    }

    #[test]
    fn declared_shape_and_storage() {
        let p = EhcPolicy::new(&geom());
        assert_eq!(p.shard_affinity(), ShardAffinity::Global);
        assert_eq!(p.slice_kernel(), None::<SliceKernel>);
        assert_eq!(p.bits_per_set(), 16 * 16);
        assert_eq!(p.global_bits(), 4096 * 4);
    }
}
