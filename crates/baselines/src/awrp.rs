//! AWRP: Adaptive Weight Ranking Policy (Swain et al., IJCSI 2011;
//! arXiv 1107.4851).
//!
//! AWRP ranks every resident line by a weight combining recency and
//! access frequency, evicting the lowest-weight line — a middle ground
//! between LRU (pure recency, thrashes on scans) and LFU (pure
//! frequency, hoards stale hot blocks). This implementation expresses
//! the ranking in recency-clock units: each line carries the per-set
//! timestamp of its last touch plus a capped frequency bonus worth
//! [`FREQ_WEIGHT`] touches per recorded hit, so a block hit `n` times
//! survives a scan `16 n` accesses long before it ages out, and stale
//! blocks still expire because the bonus saturates while the clock does
//! not.

#![forbid(unsafe_code)]

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// Recency-clock ticks one frequency step is worth.
pub const FREQ_WEIGHT: u64 = 16;
/// Frequency ceiling (4-bit counter).
pub const FREQ_MAX: u8 = 15;

/// Weight-ranking replacement: victim = argmin(last-use + frequency
/// bonus).
///
/// The clock is **per set** and strides by `ways` per touch, for two
/// load-bearing reasons: the low `log2(ways)` bits stay zero so
/// [`victim`](ReplacementPolicy::victim) can pack the way index into the
/// timestamp and take a branchless `min` (the [`crate::TrueLru`]
/// trick), and — unlike a cache-global clock — per-set timestamps make
/// weight *differences* depend only on the set's own access
/// subsequence, which stable shard bucketing preserves. A global clock
/// would stretch gaps by other sets' traffic and flip weight
/// comparisons under sharded replay; with per-set clocks the policy is
/// exactly [`ShardAffinity::SetLocal`].
#[derive(Debug, Clone)]
pub struct AwrpPolicy {
    ways: usize,
    clock: Vec<u64>,
    last_use: Vec<u64>,
    freq: Vec<u8>,
}

impl AwrpPolicy {
    /// Creates AWRP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        Self::with_clock_origin(geom, 0)
    }

    /// Creates AWRP with every per-set clock started at `origin` (rounded
    /// down to a multiple of `ways` to keep timestamps stride-aligned).
    ///
    /// Victim ranking reads only modular clock *distances*, so behaviour is
    /// origin-independent — including across the `u64` wrap. This
    /// constructor exists to let tests (and the proptest wraparound suite)
    /// pin that claim by starting clocks just below `u64::MAX`.
    pub fn with_clock_origin(geom: &CacheGeometry, origin: u64) -> Self {
        let ways = geom.ways();
        let origin = origin - origin % ways as u64;
        AwrpPolicy {
            ways,
            clock: vec![origin; geom.sets()],
            last_use: vec![origin; geom.sets() * geom.ways()],
            freq: vec![0; geom.sets() * geom.ways()],
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        // Wrapping: the clock is only ever read through `age`'s modular
        // subtraction, so crossing u64::MAX is harmless.
        self.clock[set] = self.clock[set].wrapping_add(self.ways as u64);
        self.last_use[set * self.ways + way] = self.clock[set];
    }

    /// Clock ticks since this line's last touch (exact modular distance:
    /// `last_use` is always a past value of the same set's clock).
    #[inline]
    fn age(&self, set: usize, idx: usize) -> u64 {
        self.clock[set].wrapping_sub(self.last_use[idx])
    }
}

impl ReplacementPolicy for AwrpPolicy {
    fn name(&self) -> &str {
        "AWRP"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        // Minimizing `last_use + bonus` equals minimizing `bonus - age`
        // (the set clock is a common constant), and the age form survives
        // clock wraparound. Ties fall to the lowest way, as the old packed
        // `weight | way` argmin did.
        let base = set * self.ways;
        (0..self.ways)
            .min_by_key(|&w| {
                let bonus =
                    i128::from(self.freq[base + w]) * FREQ_WEIGHT as i128 * self.ways as i128;
                (bonus - i128::from(self.age(set, base + w)), w)
            })
            .expect("ways > 0")
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        let idx = set * self.ways + way;
        self.freq[idx] = (self.freq[idx] + 1).min(FREQ_MAX);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        self.freq[set * self.ways + way] = 0;
    }

    fn bits_per_set(&self) -> u64 {
        // Recency ordering at the stack-LRU figure plus the 4-bit
        // frequency counter per line.
        sim_core::overhead::lru_bits_per_set(self.ways) + self.ways as u64 * 4
    }

    // Per-set clocks (see the struct docs): every quantity the victim
    // comparison reads is a function of the set's own access
    // subsequence, so sharded replay is exact.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }

    // Behaviour is a function of each line's (age, freq) alone — the raw
    // clock origin cancels out of every comparison — so rebasing
    // timestamps against the set clock is an exact, origin-independent
    // quotient that keeps the checker's reachable space finite.
    fn audit_set_digest(&self, set: usize) -> Option<Vec<u8>> {
        let base = set * self.ways;
        let mut d = Vec::with_capacity(self.ways * 9);
        for w in 0..self.ways {
            d.extend_from_slice(&self.age(set, base + w).to_le_bytes());
            d.push(self.freq[base + w]);
        }
        Some(d)
    }

    fn audit_invariants(&self) -> Result<(), String> {
        if let Some(idx) = self.freq.iter().position(|&f| f > FREQ_MAX) {
            return Err(format!(
                "AWRP frequency counter {} at line {idx} exceeds {FREQ_MAX}",
                self.freq[idx]
            ));
        }
        let ways = self.ways as u64;
        for (set, &clk) in self.clock.iter().enumerate() {
            if clk % ways != 0 {
                return Err(format!(
                    "AWRP clock {clk} in set {set} lost its way alignment"
                ));
            }
            let base = set * self.ways;
            for w in 0..self.ways {
                if self.age(set, base + w) % ways != 0 {
                    return Err(format!(
                        "AWRP timestamp in set {set} way {w} is not stride-aligned \
                         with its set clock"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn degenerates_to_lru_without_hits() {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        p.on_fill(0, 0, &ctx()); // refresh way 0; way 1 is now oldest
        assert_eq!(p.victim(0, &ctx()), 1);
    }

    #[test]
    fn frequency_bonus_outranks_recency() {
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        // Way 0 is oldest by recency but earns two hits' worth of bonus
        // (32 touches); ways 1..4 were touched within 3 ticks of it.
        p.on_hit(0, 0, &ctx());
        p.on_hit(0, 0, &ctx());
        let v = p.victim(0, &ctx());
        assert_ne!(v, 0, "frequent way must not be the victim");
        assert_eq!(v, 1, "oldest un-hit way loses");
    }

    #[test]
    fn saturated_frequency_still_ages_out() {
        let g = CacheGeometry::from_sets(1, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        p.on_fill(0, 1, &ctx());
        for _ in 0..100 {
            p.on_hit(0, 0, &ctx()); // freq saturates at FREQ_MAX
        }
        // Touch way 1 often enough that way 0's capped bonus can't save
        // it: the bonus is worth FREQ_MAX * FREQ_WEIGHT = 240 touches.
        for _ in 0..300 {
            p.on_hit(0, 1, &ctx());
        }
        assert_eq!(p.victim(0, &ctx()), 0, "stale hot block must expire");
    }

    #[test]
    fn refill_resets_the_bonus() {
        let g = CacheGeometry::from_sets(1, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        for _ in 0..5 {
            p.on_hit(0, 0, &ctx());
        }
        p.on_fill(0, 0, &ctx()); // new tenant, no inherited credit
        p.on_fill(0, 1, &ctx());
        p.on_hit(0, 1, &ctx());
        assert_eq!(p.victim(0, &ctx()), 0);
    }

    #[test]
    fn sets_do_not_interfere() {
        let g = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        p.on_fill(1, 0, &ctx());
        p.on_fill(0, 1, &ctx());
        p.on_fill(1, 1, &ctx());
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.victim(0, &ctx()), 1);
        assert_eq!(p.victim(1, &ctx()), 0);
    }

    #[test]
    fn cache_scan_keeps_the_hot_block() {
        // A 4-way set holds one block hit repeatedly plus a scan: AWRP
        // keeps the hot block where LRU would have evicted it.
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut c = SetAssocCache::new(g, Box::new(AwrpPolicy::new(&g)));
        c.access_block(100, &ctx());
        for _ in 0..4 {
            c.access_block(100, &ctx());
        }
        for blk in 0..8u64 {
            c.access_block(blk, &ctx());
        }
        let out = c.access_block(100, &ctx());
        assert!(out.hit, "hot block survived the scan");
    }

    #[test]
    fn storage_accounting() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        let p = AwrpPolicy::new(&g);
        assert_eq!(
            p.bits_per_set(),
            sim_core::overhead::lru_bits_per_set(16) + 64
        );
        assert_eq!(p.global_bits(), 0);
        assert_eq!(p.shard_affinity(), ShardAffinity::SetLocal);
    }
}
