//! AWRP: Adaptive Weight Ranking Policy (Swain et al., IJCSI 2011;
//! arXiv 1107.4851).
//!
//! AWRP ranks every resident line by a weight combining recency and
//! access frequency, evicting the lowest-weight line — a middle ground
//! between LRU (pure recency, thrashes on scans) and LFU (pure
//! frequency, hoards stale hot blocks). This implementation expresses
//! the ranking in recency-clock units: each line carries the per-set
//! timestamp of its last touch plus a capped frequency bonus worth
//! [`FREQ_WEIGHT`] touches per recorded hit, so a block hit `n` times
//! survives a scan `16 n` accesses long before it ages out, and stale
//! blocks still expire because the bonus saturates while the clock does
//! not.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy, ShardAffinity};

/// Recency-clock ticks one frequency step is worth.
pub const FREQ_WEIGHT: u64 = 16;
/// Frequency ceiling (4-bit counter).
pub const FREQ_MAX: u8 = 15;

/// Weight-ranking replacement: victim = argmin(last-use + frequency
/// bonus).
///
/// The clock is **per set** and strides by `ways` per touch, for two
/// load-bearing reasons: the low `log2(ways)` bits stay zero so
/// [`victim`](ReplacementPolicy::victim) can pack the way index into the
/// timestamp and take a branchless `min` (the [`crate::TrueLru`]
/// trick), and — unlike a cache-global clock — per-set timestamps make
/// weight *differences* depend only on the set's own access
/// subsequence, which stable shard bucketing preserves. A global clock
/// would stretch gaps by other sets' traffic and flip weight
/// comparisons under sharded replay; with per-set clocks the policy is
/// exactly [`ShardAffinity::SetLocal`].
#[derive(Debug, Clone)]
pub struct AwrpPolicy {
    ways: usize,
    clock: Vec<u64>,
    last_use: Vec<u64>,
    freq: Vec<u8>,
}

impl AwrpPolicy {
    /// Creates AWRP for `geom`.
    pub fn new(geom: &CacheGeometry) -> Self {
        AwrpPolicy {
            ways: geom.ways(),
            clock: vec![0; geom.sets()],
            last_use: vec![0; geom.sets() * geom.ways()],
            freq: vec![0; geom.sets() * geom.ways()],
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock[set] += self.ways as u64;
        self.last_use[set * self.ways + way] = self.clock[set];
    }

    /// The ranking weight of one line, in clock units (way bits clear).
    #[inline]
    fn weight(&self, idx: usize) -> u64 {
        self.last_use[idx] + u64::from(self.freq[idx]) * FREQ_WEIGHT * self.ways as u64
    }
}

impl ReplacementPolicy for AwrpPolicy {
    fn name(&self) -> &str {
        "AWRP"
    }

    #[inline]
    fn victim(&mut self, set: usize, _ctx: &AccessContext) -> usize {
        let base = set * self.ways;
        let key = (0..self.ways)
            .map(|w| self.weight(base + w) | w as u64)
            .min()
            .expect("ways > 0");
        (key as usize) & (self.ways - 1)
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        let idx = set * self.ways + way;
        self.freq[idx] = (self.freq[idx] + 1).min(FREQ_MAX);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessContext) {
        self.touch(set, way);
        self.freq[set * self.ways + way] = 0;
    }

    fn bits_per_set(&self) -> u64 {
        // Recency ordering at the stack-LRU figure plus the 4-bit
        // frequency counter per line.
        sim_core::overhead::lru_bits_per_set(self.ways) + self.ways as u64 * 4
    }

    // Per-set clocks (see the struct docs): every quantity the victim
    // comparison reads is a function of the set's own access
    // subsequence, so sharded replay is exact.
    fn shard_affinity(&self) -> ShardAffinity {
        ShardAffinity::SetLocal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SetAssocCache;

    fn ctx() -> AccessContext {
        AccessContext::blank()
    }

    #[test]
    fn degenerates_to_lru_without_hits() {
        let g = CacheGeometry::from_sets(2, 4, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        p.on_fill(0, 0, &ctx()); // refresh way 0; way 1 is now oldest
        assert_eq!(p.victim(0, &ctx()), 1);
    }

    #[test]
    fn frequency_bonus_outranks_recency() {
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        // Way 0 is oldest by recency but earns two hits' worth of bonus
        // (32 touches); ways 1..4 were touched within 3 ticks of it.
        p.on_hit(0, 0, &ctx());
        p.on_hit(0, 0, &ctx());
        let v = p.victim(0, &ctx());
        assert_ne!(v, 0, "frequent way must not be the victim");
        assert_eq!(v, 1, "oldest un-hit way loses");
    }

    #[test]
    fn saturated_frequency_still_ages_out() {
        let g = CacheGeometry::from_sets(1, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        p.on_fill(0, 1, &ctx());
        for _ in 0..100 {
            p.on_hit(0, 0, &ctx()); // freq saturates at FREQ_MAX
        }
        // Touch way 1 often enough that way 0's capped bonus can't save
        // it: the bonus is worth FREQ_MAX * FREQ_WEIGHT = 240 touches.
        for _ in 0..300 {
            p.on_hit(0, 1, &ctx());
        }
        assert_eq!(p.victim(0, &ctx()), 0, "stale hot block must expire");
    }

    #[test]
    fn refill_resets_the_bonus() {
        let g = CacheGeometry::from_sets(1, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        for _ in 0..5 {
            p.on_hit(0, 0, &ctx());
        }
        p.on_fill(0, 0, &ctx()); // new tenant, no inherited credit
        p.on_fill(0, 1, &ctx());
        p.on_hit(0, 1, &ctx());
        assert_eq!(p.victim(0, &ctx()), 0);
    }

    #[test]
    fn sets_do_not_interfere() {
        let g = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let mut p = AwrpPolicy::new(&g);
        p.on_fill(0, 0, &ctx());
        p.on_fill(1, 0, &ctx());
        p.on_fill(0, 1, &ctx());
        p.on_fill(1, 1, &ctx());
        p.on_hit(0, 0, &ctx());
        assert_eq!(p.victim(0, &ctx()), 1);
        assert_eq!(p.victim(1, &ctx()), 0);
    }

    #[test]
    fn cache_scan_keeps_the_hot_block() {
        // A 4-way set holds one block hit repeatedly plus a scan: AWRP
        // keeps the hot block where LRU would have evicted it.
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        let mut c = SetAssocCache::new(g, Box::new(AwrpPolicy::new(&g)));
        c.access_block(100, &ctx());
        for _ in 0..4 {
            c.access_block(100, &ctx());
        }
        for blk in 0..8u64 {
            c.access_block(blk, &ctx());
        }
        let out = c.access_block(100, &ctx());
        assert!(out.hit, "hot block survived the scan");
    }

    #[test]
    fn storage_accounting() {
        let g = CacheGeometry::from_sets(4, 16, 64).unwrap();
        let p = AwrpPolicy::new(&g);
        assert_eq!(
            p.bits_per_set(),
            sim_core::overhead::lru_bits_per_set(16) + 64
        );
        assert_eq!(p.global_bits(), 0);
        assert_eq!(p.shard_affinity(), ShardAffinity::SetLocal);
    }
}
