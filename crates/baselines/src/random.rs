//! Seeded random replacement.

use sim_core::{AccessContext, CacheGeometry, ReplacementPolicy};

/// Uniform random victim selection.
///
/// The paper's Figure 4 shows random replacement averaging 99.9 % of LRU's
/// performance — the motivating observation that LRU's intuition buys very
/// little at the LLC. The generator is a self-contained xorshift64*, so
/// runs are reproducible from the seed and the policy carries no `rand`
/// state in its hardware accounting (a real implementation would use an
/// LFSR; we count zero metadata bits per set).
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    ways: usize,
    state: u64,
}

impl RandomPolicy {
    /// Creates a random policy with a fixed default seed.
    pub fn new(geom: &CacheGeometry) -> Self {
        Self::with_seed(geom, 0x9e37_79b9_7f4a_7c15)
    }

    /// Creates a random policy with an explicit seed (must be nonzero; a
    /// zero seed is remapped to a fixed constant).
    pub fn with_seed(geom: &CacheGeometry, seed: u64) -> Self {
        RandomPolicy {
            ways: geom.ways(),
            state: if seed == 0 {
                0xdead_beef_cafe_f00d
            } else {
                seed
            },
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* (Vigna): small, fast, good enough for victim picking.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "Random"
    }

    fn victim(&mut self, _set: usize, _ctx: &AccessContext) -> usize {
        (self.next() % self.ways as u64) as usize
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _ctx: &AccessContext) {}

    fn bits_per_set(&self) -> u64 {
        0
    }

    // The RNG word is the only state, and it is shared across sets (hence
    // the default `Global` affinity). Its 2^64 − 1 cycle means the bounded
    // checker explores a budget-truncated slice rather than closing the
    // state space — exactly what the `BoundedReport::complete` flag is for.
    fn audit_global_digest(&self) -> Vec<u8> {
        self.state.to_le_bytes().to_vec()
    }

    fn audit_invariants(&self) -> Result<(), String> {
        // xorshift64* is a bijection on nonzero words; reaching zero would
        // wedge the generator forever.
        if self.state == 0 {
            return Err("random policy RNG state collapsed to zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(4, 16, 64).unwrap()
    }

    #[test]
    fn victims_in_range_and_varied() {
        let mut p = RandomPolicy::new(&geom());
        let mut seen = [false; 16];
        for _ in 0..1000 {
            let v = p.victim(0, &AccessContext::blank());
            assert!(v < 16);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws should hit every way");
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RandomPolicy::with_seed(&geom(), 7);
        let mut b = RandomPolicy::with_seed(&geom(), 7);
        for _ in 0..50 {
            assert_eq!(
                a.victim(0, &AccessContext::blank()),
                b.victim(0, &AccessContext::blank())
            );
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut p = RandomPolicy::with_seed(&geom(), 0);
        // A zero xorshift state would be stuck at zero forever.
        let first = p.victim(0, &AccessContext::blank());
        let varied = (0..100).any(|_| p.victim(0, &AccessContext::blank()) != first);
        assert!(varied);
    }

    #[test]
    fn zero_metadata() {
        assert_eq!(RandomPolicy::new(&geom()).bits_per_set(), 0);
    }
}
