//! A tiny text DSL for describing custom workloads.
//!
//! Downstream users rarely want to write Rust to describe an access
//! pattern; this module parses a compact one-line-per-phase description
//! into a [`WorkloadSpec`]:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! name my-workload
//! seed 42
//! ipa 3.0          # instructions per access
//! writes 0.25      # store fraction
//! phase 100000     # phase of 100k accesses; components follow until next phase
//!   stream start=0 stride=64 region=32M weight=0.6
//!   loop start=1G ws=3584K stride=64 weight=0.3
//!   gather start=2G region=8M weight=0.1
//! phase 50000
//!   chase start=0 nodes=64K
//!   window start=1G window=2M advance=8192 region=64M weight=2
//! ```
//!
//! Sizes accept `K`/`M`/`G` suffixes (binary). Omitted `weight` defaults
//! to 1.

use crate::synth::{Component, Pattern, Phase, WorkloadSpec};
use std::error::Error;
use std::fmt;

/// Error parsing a workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpecError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload spec line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSpecError {}

fn err(line: usize, message: impl Into<String>) -> ParseSpecError {
    ParseSpecError {
        line,
        message: message.into(),
    }
}

/// Parses a size like `64`, `128K`, `4M`, `1G` (binary multipliers).
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'K' | 'k' => (&s[..s.len() - 1], 1024u64),
        'M' | 'm' => (&s[..s.len() - 1], 1024 * 1024),
        'G' | 'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().map(|v| v * mult)
}

fn kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

fn parse_pattern(line_no: usize, tokens: &[&str]) -> Result<(Pattern, f64), ParseSpecError> {
    let mut weight = 1.0f64;
    let get = |key: &str| -> Option<u64> {
        tokens.iter().find_map(|t| {
            let (k, v) = kv(t)?;
            (k == key).then(|| parse_size(v))?
        })
    };
    if let Some(w) = tokens.iter().find_map(|t| {
        let (k, v) = kv(t)?;
        (k == "weight").then(|| v.parse::<f64>().ok())?
    }) {
        weight = w;
    }
    let pattern = match tokens[0] {
        "stream" => Pattern::Stream {
            start: get("start").unwrap_or(0),
            stride: get("stride").unwrap_or(64),
            region_bytes: get("region")
                .ok_or_else(|| err(line_no, "stream needs region=<size>"))?,
        },
        "loop" => Pattern::Loop {
            start: get("start").unwrap_or(0),
            working_set_bytes: get("ws").ok_or_else(|| err(line_no, "loop needs ws=<size>"))?,
            stride: get("stride").unwrap_or(64),
        },
        "gather" => Pattern::Gather {
            start: get("start").unwrap_or(0),
            region_bytes: get("region")
                .ok_or_else(|| err(line_no, "gather needs region=<size>"))?,
        },
        "chase" => {
            let nodes = get("nodes").ok_or_else(|| err(line_no, "chase needs nodes=<count>"))?;
            if !nodes.is_power_of_two() {
                return Err(err(
                    line_no,
                    format!("chase nodes must be a power of two, got {nodes}"),
                ));
            }
            Pattern::PointerChase {
                start: get("start").unwrap_or(0),
                nodes,
            }
        }
        "window" => Pattern::SlidingWindow {
            start: get("start").unwrap_or(0),
            window_bytes: get("window")
                .ok_or_else(|| err(line_no, "window needs window=<size>"))?,
            advance_lines: get("advance").unwrap_or(1),
            region_bytes: get("region")
                .ok_or_else(|| err(line_no, "window needs region=<size>"))?,
        },
        other => return Err(err(line_no, format!("unknown pattern {other:?}"))),
    };
    Ok((pattern, weight))
}

/// Parses a workload description (see the module docs for the grammar).
///
/// # Errors
///
/// Returns [`ParseSpecError`] with the offending line on any syntax or
/// semantic problem (unknown keys, missing sizes, phases without
/// components, non-power-of-two chase pools).
pub fn parse_spec(input: &str) -> Result<WorkloadSpec, ParseSpecError> {
    let mut spec = WorkloadSpec {
        name: "custom".to_string(),
        seed: 1,
        instructions_per_access: 3.0,
        write_ratio: 0.25,
        phases: Vec::new(),
    };
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "name" => {
                spec.name = tokens
                    .get(1)
                    .ok_or_else(|| err(line_no, "name needs a value"))?
                    .to_string();
            }
            "seed" => {
                spec.seed = tokens
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "seed needs an integer"))?;
            }
            "ipa" => {
                spec.instructions_per_access = tokens
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "ipa needs a number"))?;
            }
            "writes" => {
                spec.write_ratio = tokens
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err(line_no, "writes needs a fraction"))?;
            }
            "phase" => {
                let accesses = tokens
                    .get(1)
                    .and_then(|v| parse_size(v))
                    .ok_or_else(|| err(line_no, "phase needs an access count"))?;
                spec.phases.push(Phase {
                    components: Vec::new(),
                    accesses,
                });
            }
            "stream" | "loop" | "gather" | "chase" | "window" => {
                let (pattern, weight) = parse_pattern(line_no, &tokens)?;
                let phase = spec
                    .phases
                    .last_mut()
                    .ok_or_else(|| err(line_no, "pattern before any `phase` line"))?;
                phase.components.push(Component { pattern, weight });
            }
            other => return Err(err(line_no, format!("unknown directive {other:?}"))),
        }
    }
    if spec.phases.is_empty() {
        return Err(err(0, "no phases defined"));
    }
    if let Some(idx) = spec.phases.iter().position(|p| p.components.is_empty()) {
        return Err(err(0, format!("phase {} has no components", idx + 1)));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "\
# demo workload
name demo
seed 7
ipa 2.5
writes 0.1
phase 1000
  stream start=0 stride=64 region=32M weight=0.6
  loop start=1G ws=3584K weight=0.4
phase 500
  chase nodes=64K
  window start=2G window=2M advance=8192 region=64M
";

    #[test]
    fn parses_the_example() {
        let spec = parse_spec(EXAMPLE).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.seed, 7);
        assert!((spec.instructions_per_access - 2.5).abs() < 1e-12);
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.phases[0].components.len(), 2);
        assert_eq!(spec.phases[0].accesses, 1000);
        assert!(matches!(
            spec.phases[0].components[0].pattern,
            Pattern::Stream { region_bytes, .. } if region_bytes == 32 * 1024 * 1024
        ));
        assert!(matches!(
            spec.phases[1].components[0].pattern,
            Pattern::PointerChase { nodes, .. } if nodes == 65536
        ));
    }

    #[test]
    fn parsed_spec_generates() {
        let spec = parse_spec(EXAMPLE).unwrap();
        let accesses: Vec<_> = spec.generator(0).take(100).collect();
        assert_eq!(accesses.len(), 100);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size("4K"), Some(4096));
        assert_eq!(parse_size("2m"), Some(2 * 1024 * 1024));
        assert_eq!(parse_size("1G"), Some(1 << 30));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size(""), None);
    }

    #[test]
    fn error_lines_are_reported() {
        let e = parse_spec("name x\nphase 10\n  blorp foo=1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("blorp"));
    }

    #[test]
    fn pattern_before_phase_rejected() {
        let e = parse_spec("stream region=1M\n").unwrap_err();
        assert!(e.message.contains("before any"));
    }

    #[test]
    fn missing_required_key_rejected() {
        let e = parse_spec("phase 10\n  loop stride=64\n").unwrap_err();
        assert!(e.message.contains("ws="));
    }

    #[test]
    fn non_power_of_two_chase_rejected() {
        let e = parse_spec("phase 10\n  chase nodes=100\n").unwrap_err();
        assert!(e.message.contains("power of two"));
    }

    #[test]
    fn empty_phase_rejected() {
        let e = parse_spec("phase 10\n").unwrap_err();
        assert!(e.message.contains("no components"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let spec = parse_spec("\n# hi\nphase 5 # tail comment\n gather region=1M\n").unwrap();
        assert_eq!(spec.phases.len(), 1);
    }
}
