//! Synthetic models of the 29 SPEC CPU 2006 benchmarks.
//!
//! Each benchmark gets a [`WorkloadSpec`] whose pattern mixture mimics that
//! benchmark's published last-level-cache personality. The models target
//! the paper's 4 MB LLC; working-set sizes are chosen relative to that
//! capacity so the qualitative behaviours the paper depends on are present:
//!
//! * **462.libquantum** streams a vector far larger than the LLC — the
//!   canonical LRU-thrash / LRU-insertion-wins case;
//! * **436.cactusADM** loops over a working set just beyond capacity,
//!   where a non-MRU insertion policy retains a useful fraction (the paper
//!   reports its largest single speedup, 39–49 %, here);
//! * **447.dealII** has a working set that *just fits*, so eager-eviction
//!   policies (DRRIP, PDP, DGIPPR) lose to LRU — the paper's one notable
//!   regression;
//! * **429.mcf** / **471.omnetpp** / **473.astar** / **483.xalancbmk** are
//!   pointer-chasing and gather-heavy with giant footprints;
//! * **416.gamess** / **453.povray** and friends are cache-resident, where
//!   every policy (including Belady MIN) ties.
//!
//! These are *models*, not the benchmarks: see DESIGN.md §2.

use crate::synth::{Component, Pattern, Phase, WorkloadSpec};

/// One simpoint-style weighted segment of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simpoint {
    /// Index of the segment (also perturbs the generator seed).
    pub index: u64,
    /// Fraction of the benchmark's execution this segment represents.
    pub weight: f64,
}

/// The 29 SPEC CPU 2006 benchmarks modelled by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Spec2006 {
    Perlbench,
    Bzip2,
    Gcc,
    Bwaves,
    Gamess,
    Mcf,
    Milc,
    Zeusmp,
    Gromacs,
    CactusADM,
    Leslie3d,
    Namd,
    Gobmk,
    DealII,
    Soplex,
    Povray,
    Calculix,
    Hmmer,
    Sjeng,
    GemsFDTD,
    Libquantum,
    H264ref,
    Tonto,
    Lbm,
    Omnetpp,
    Astar,
    Wrf,
    Sphinx3,
    Xalancbmk,
}

const MB: u64 = 1024 * 1024;
const KB: u64 = 1024;

impl Spec2006 {
    /// All 29 benchmarks, in SPEC numbering order.
    pub fn all() -> [Spec2006; 29] {
        use Spec2006::*;
        [
            Perlbench, Bzip2, Gcc, Bwaves, Gamess, Mcf, Milc, Zeusmp, Gromacs, CactusADM, Leslie3d,
            Namd, Gobmk, DealII, Soplex, Povray, Calculix, Hmmer, Sjeng, GemsFDTD, Libquantum,
            H264ref, Tonto, Lbm, Omnetpp, Astar, Wrf, Sphinx3, Xalancbmk,
        ]
    }

    /// The benchmark's full SPEC name, e.g. `"429.mcf"`.
    pub fn name(&self) -> &'static str {
        use Spec2006::*;
        match self {
            Perlbench => "400.perlbench",
            Bzip2 => "401.bzip2",
            Gcc => "403.gcc",
            Bwaves => "410.bwaves",
            Gamess => "416.gamess",
            Mcf => "429.mcf",
            Milc => "433.milc",
            Zeusmp => "434.zeusmp",
            Gromacs => "435.gromacs",
            CactusADM => "436.cactusADM",
            Leslie3d => "437.leslie3d",
            Namd => "444.namd",
            Gobmk => "445.gobmk",
            DealII => "447.dealII",
            Soplex => "450.soplex",
            Povray => "453.povray",
            Calculix => "454.calculix",
            Hmmer => "456.hmmer",
            Sjeng => "458.sjeng",
            GemsFDTD => "459.GemsFDTD",
            Libquantum => "462.libquantum",
            H264ref => "464.h264ref",
            Tonto => "465.tonto",
            Lbm => "470.lbm",
            Omnetpp => "471.omnetpp",
            Astar => "473.astar",
            Wrf => "481.wrf",
            Sphinx3 => "482.sphinx3",
            Xalancbmk => "483.xalancbmk",
        }
    }

    /// Looks a benchmark up by its SPEC name.
    pub fn from_name(name: &str) -> Option<Spec2006> {
        Spec2006::all().into_iter().find(|b| b.name() == name)
    }

    /// The memory-intensive subset as printed in the paper (Figure 13:
    /// benchmarks from 433.milc through 429.mcf, i.e. those with DRRIP
    /// speedup over LRU exceeding 1 %).
    pub fn paper_memory_intensive() -> [Spec2006; 11] {
        use Spec2006::*;
        [
            Milc, Soplex, Gromacs, Wrf, Libquantum, Xalancbmk, Astar, Perlbench, Sphinx3,
            CactusADM, Mcf,
        ]
    }

    /// Simpoint-style weighted segments for this benchmark (up to 6 per
    /// the paper's methodology; we model three per benchmark).
    pub fn simpoints(&self) -> Vec<Simpoint> {
        // Deterministic but benchmark-specific weights.
        let h = self
            .name()
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b.into()));
        let w0 = 0.40 + (h % 21) as f64 / 100.0; // 0.40..0.60
        let w1 = (1.0 - w0) * (0.5 + (h / 21 % 17) as f64 / 64.0);
        let w2 = 1.0 - w0 - w1;
        vec![
            Simpoint {
                index: 0,
                weight: w0,
            },
            Simpoint {
                index: 1,
                weight: w1,
            },
            Simpoint {
                index: 2,
                weight: w2,
            },
        ]
    }

    /// The benchmark's synthetic workload model.
    pub fn workload(&self) -> WorkloadSpec {
        use Spec2006::*;
        let h = self
            .name()
            .bytes()
            .fold(7u64, |a, b| a.wrapping_mul(131).wrapping_add(b.into()));
        let base = |name: &str, ipa: f64, wr: f64, phases: Vec<Phase>| WorkloadSpec {
            name: name.to_string(),
            seed: h,
            instructions_per_access: ipa,
            write_ratio: wr,
            phases,
        };
        let mix = |comps: Vec<(Pattern, f64)>, accesses: u64| Phase {
            components: comps
                .into_iter()
                .map(|(pattern, weight)| Component { pattern, weight })
                .collect(),
            accesses,
        };
        // Address-space bases keep patterns in disjoint regions.
        let r0 = 0u64;
        let r1 = 1 << 32;
        let r2 = 2 << 32;
        match self {
            // --- memory-intensive group (DRRIP gains > 1 %) ---
            Libquantum => base(
                self.name(),
                4.0,
                0.25,
                // Pure streaming over a 32 MB vector: zero short reuse.
                vec![Phase::uniform(
                    Pattern::Stream {
                        start: r0,
                        stride: 64,
                        region_bytes: 32 * MB,
                    },
                    1 << 20,
                )],
            ),
            CactusADM => base(
                self.name(),
                3.0,
                0.30,
                // Stencil sweep just beyond LLC capacity: the jackpot case
                // for non-MRU insertion.
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 4864 * KB,
                                stride: 64,
                            },
                            0.75,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2 * MB,
                                advance_lines: 8192,
                                region_bytes: 32 * MB,
                            },
                            0.15,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: 512 * KB,
                            },
                            0.1,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Mcf => base(
                self.name(),
                2.5,
                0.20,
                // Huge irregular graph traversal with a warm core.
                vec![mix(
                    vec![
                        (
                            Pattern::Gather {
                                start: r0,
                                region_bytes: 64 * MB,
                            },
                            0.45,
                        ),
                        (
                            Pattern::PointerChase {
                                start: r1,
                                nodes: 256 * 1024,
                            },
                            0.35,
                        ),
                        (
                            Pattern::Loop {
                                start: r2,
                                working_set_bytes: 2 * MB,
                                stride: 64,
                            },
                            0.20,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Sphinx3 => base(
                self.name(),
                3.0,
                0.10,
                // Acoustic-model scans a bit over capacity + feature gathers.
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 5 * MB,
                                stride: 64,
                            },
                            0.55,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2560 * KB,
                                advance_lines: 10240,
                                region_bytes: 40 * MB,
                            },
                            0.15,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: 8 * MB,
                            },
                            0.3,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Xalancbmk => base(
                self.name(),
                2.8,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::Gather {
                                start: r0,
                                region_bytes: 6 * MB,
                            },
                            0.55,
                        ),
                        (
                            Pattern::PointerChase {
                                start: r1,
                                nodes: 32 * 1024,
                            },
                            0.30,
                        ),
                        (
                            Pattern::Loop {
                                start: r2,
                                working_set_bytes: MB,
                                stride: 64,
                            },
                            0.15,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Astar => base(
                self.name(),
                2.7,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::PointerChase {
                                start: r0,
                                nodes: 128 * 1024,
                            },
                            0.5,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: 4 * MB,
                            },
                            0.5,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Perlbench => base(
                self.name(),
                3.2,
                0.30,
                // Interpreter: hash gathers over a few MB plus hot loops,
                // with phase changes (different scripts).
                vec![
                    mix(
                        vec![
                            (
                                Pattern::Gather {
                                    start: r0,
                                    region_bytes: 5 * MB,
                                },
                                0.35,
                            ),
                            (
                                Pattern::SlidingWindow {
                                    start: r2 + (1 << 30),
                                    window_bytes: 3 * MB,
                                    advance_lines: 12288,
                                    region_bytes: 48 * MB,
                                },
                                0.25,
                            ),
                            (
                                Pattern::Loop {
                                    start: r1,
                                    working_set_bytes: 768 * KB,
                                    stride: 64,
                                },
                                0.4,
                            ),
                        ],
                        200_000,
                    ),
                    mix(
                        vec![
                            (
                                Pattern::Gather {
                                    start: r0,
                                    region_bytes: 2 * MB,
                                },
                                0.4,
                            ),
                            (
                                Pattern::Stream {
                                    start: r2,
                                    stride: 64,
                                    region_bytes: 16 * MB,
                                },
                                0.6,
                            ),
                        ],
                        100_000,
                    ),
                ],
            ),
            Milc => base(
                self.name(),
                3.5,
                0.35,
                // Lattice QCD: long streams plus a 5 MB sweep.
                vec![mix(
                    vec![
                        (
                            Pattern::Stream {
                                start: r0,
                                stride: 64,
                                region_bytes: 24 * MB,
                            },
                            0.55,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 5 * MB,
                                stride: 64,
                            },
                            0.45,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Soplex => base(
                self.name(),
                2.9,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::Gather {
                                start: r0,
                                region_bytes: 12 * MB,
                            },
                            0.45,
                        ),
                        (
                            Pattern::Stream {
                                start: r1,
                                stride: 64,
                                region_bytes: 16 * MB,
                            },
                            0.25,
                        ),
                        (
                            Pattern::Loop {
                                start: r2,
                                working_set_bytes: 3 * MB,
                                stride: 64,
                            },
                            0.30,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Gromacs => base(
                self.name(),
                3.4,
                0.30,
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 4352 * KB,
                                stride: 64,
                            },
                            0.55,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2 * MB,
                                advance_lines: 8192,
                                region_bytes: 32 * MB,
                            },
                            0.2,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: MB,
                            },
                            0.25,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Wrf => base(
                self.name(),
                3.3,
                0.30,
                vec![mix(
                    vec![
                        (
                            Pattern::Stream {
                                start: r0,
                                stride: 64,
                                region_bytes: 20 * MB,
                            },
                            0.35,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 4608 * KB,
                                stride: 64,
                            },
                            0.45,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2560 * KB,
                                advance_lines: 10240,
                                region_bytes: 40 * MB,
                            },
                            0.2,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            // --- LRU-friendly / regression cases ---
            DealII => base(
                self.name(),
                3.1,
                0.25,
                // A sliding working set just inside capacity: each block is
                // reused for a handful of sweeps then dies. LRU is
                // near-optimal; early-eviction insertion policies lose —
                // the paper's one notable regression case.
                vec![Phase::uniform(
                    Pattern::SlidingWindow {
                        start: r0,
                        window_bytes: 3584 * KB,
                        advance_lines: 7168,
                        region_bytes: 64 * MB,
                    },
                    1 << 20,
                )],
            ),
            GemsFDTD => base(
                self.name(),
                3.2,
                0.35,
                // Field sweeps with finite block lifetimes plus background
                // streaming: recency-friendly, thrash-resistant policies
                // gain little (DRRIP slightly loses here in the paper).
                vec![mix(
                    vec![
                        (
                            Pattern::SlidingWindow {
                                start: r0,
                                window_bytes: 3700 * KB,
                                advance_lines: 9856,
                                region_bytes: 96 * MB,
                            },
                            0.75,
                        ),
                        (
                            Pattern::Stream {
                                start: r1,
                                stride: 64,
                                region_bytes: 24 * MB,
                            },
                            0.25,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Omnetpp => base(
                self.name(),
                2.6,
                0.30,
                // Discrete-event simulator: pointer chasing over ~2x LLC
                // with a recency-friendly event-queue window.
                vec![mix(
                    vec![
                        (
                            Pattern::PointerChase {
                                start: r0,
                                nodes: 128 * 1024,
                            },
                            0.5,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r1,
                                window_bytes: 3 * MB,
                                advance_lines: 12288,
                                region_bytes: 48 * MB,
                            },
                            0.3,
                        ),
                        (
                            Pattern::Gather {
                                start: r2,
                                region_bytes: 2 * MB,
                            },
                            0.2,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            // --- streaming floating-point group ---
            Bwaves => base(
                self.name(),
                3.6,
                0.30,
                vec![Phase::uniform(
                    Pattern::Stream {
                        start: r0,
                        stride: 64,
                        region_bytes: 28 * MB,
                    },
                    1 << 20,
                )],
            ),
            Lbm => base(
                self.name(),
                3.0,
                0.45,
                vec![mix(
                    vec![
                        (
                            Pattern::Stream {
                                start: r0,
                                stride: 64,
                                region_bytes: 26 * MB,
                            },
                            0.9,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 512 * KB,
                                stride: 64,
                            },
                            0.1,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Leslie3d => base(
                self.name(),
                3.4,
                0.35,
                vec![mix(
                    vec![
                        (
                            Pattern::Stream {
                                start: r0,
                                stride: 64,
                                region_bytes: 18 * MB,
                            },
                            0.5,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 2 * MB,
                                stride: 64,
                            },
                            0.25,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 3 * MB,
                                advance_lines: 12288,
                                region_bytes: 48 * MB,
                            },
                            0.25,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Zeusmp => base(
                self.name(),
                3.3,
                0.35,
                vec![mix(
                    vec![
                        (
                            Pattern::Stream {
                                start: r0,
                                stride: 128,
                                region_bytes: 16 * MB,
                            },
                            0.45,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r1,
                                window_bytes: 3 * MB,
                                advance_lines: 12288,
                                region_bytes: 48 * MB,
                            },
                            0.55,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Hmmer => base(
                self.name(),
                3.8,
                0.20,
                // Profile HMM tables: a sweep moderately over capacity.
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 4480 * KB,
                                stride: 64,
                            },
                            0.6,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 128 * KB,
                                stride: 64,
                            },
                            0.15,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2 + (1 << 30),
                                window_bytes: 2 * MB,
                                advance_lines: 8192,
                                region_bytes: 32 * MB,
                            },
                            0.1,
                        ),
                        (
                            Pattern::Gather {
                                start: r2,
                                region_bytes: 2 * MB,
                            },
                            0.15,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Bzip2 => base(
                self.name(),
                3.0,
                0.35,
                // Block-sorting compressor: alternating block phases.
                vec![
                    mix(
                        vec![
                            (
                                Pattern::Loop {
                                    start: r0,
                                    working_set_bytes: 2 * MB,
                                    stride: 64,
                                },
                                0.7,
                            ),
                            (
                                Pattern::Gather {
                                    start: r1,
                                    region_bytes: 4 * MB,
                                },
                                0.3,
                            ),
                        ],
                        150_000,
                    ),
                    mix(
                        vec![
                            (
                                Pattern::Stream {
                                    start: r2,
                                    stride: 64,
                                    region_bytes: 16 * MB,
                                },
                                0.6,
                            ),
                            (
                                Pattern::Gather {
                                    start: r1,
                                    region_bytes: MB,
                                },
                                0.4,
                            ),
                        ],
                        100_000,
                    ),
                ],
            ),
            Gcc => base(
                self.name(),
                2.9,
                0.30,
                vec![
                    mix(
                        vec![
                            (
                                Pattern::Gather {
                                    start: r0,
                                    region_bytes: 3 * MB,
                                },
                                0.4,
                            ),
                            (
                                Pattern::SlidingWindow {
                                    start: r2 + (3 << 30),
                                    window_bytes: 2 * MB,
                                    advance_lines: 8192,
                                    region_bytes: 32 * MB,
                                },
                                0.3,
                            ),
                            (
                                Pattern::Loop {
                                    start: r1,
                                    working_set_bytes: MB,
                                    stride: 64,
                                },
                                0.3,
                            ),
                        ],
                        120_000,
                    ),
                    mix(
                        vec![
                            (
                                Pattern::PointerChase {
                                    start: r2,
                                    nodes: 16 * 1024,
                                },
                                0.4,
                            ),
                            (
                                Pattern::Gather {
                                    start: r0,
                                    region_bytes: MB,
                                },
                                0.6,
                            ),
                        ],
                        80_000,
                    ),
                ],
            ),
            Tonto => base(
                self.name(),
                3.5,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 1536 * KB,
                                stride: 64,
                            },
                            0.45,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2560 * KB,
                                advance_lines: 10240,
                                region_bytes: 40 * MB,
                            },
                            0.2,
                        ),
                        (
                            Pattern::Stream {
                                start: r1,
                                stride: 64,
                                region_bytes: 16 * MB,
                            },
                            0.35,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Calculix => base(
                self.name(),
                3.4,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::SlidingWindow {
                                start: r0,
                                window_bytes: 2560 * KB,
                                advance_lines: 10240,
                                region_bytes: 40 * MB,
                            },
                            0.6,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: MB,
                            },
                            0.4,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            // --- cache-resident group (policy-insensitive) ---
            Gamess => base(
                self.name(),
                4.2,
                0.20,
                vec![Phase::uniform(
                    Pattern::Loop {
                        start: r0,
                        working_set_bytes: 384 * KB,
                        stride: 64,
                    },
                    1 << 20,
                )],
            ),
            Povray => base(
                self.name(),
                4.0,
                0.20,
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: 512 * KB,
                                stride: 64,
                            },
                            0.8,
                        ),
                        (
                            Pattern::Gather {
                                start: r1,
                                region_bytes: 256 * KB,
                            },
                            0.2,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Namd => base(
                self.name(),
                3.9,
                0.25,
                vec![Phase::uniform(
                    Pattern::Loop {
                        start: r0,
                        working_set_bytes: 768 * KB,
                        stride: 64,
                    },
                    1 << 20,
                )],
            ),
            Sjeng => base(
                self.name(),
                3.7,
                0.25,
                vec![mix(
                    vec![
                        (
                            Pattern::Gather {
                                start: r0,
                                region_bytes: 1280 * KB,
                            },
                            0.6,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 256 * KB,
                                stride: 64,
                            },
                            0.4,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            Gobmk => base(
                self.name(),
                3.5,
                0.30,
                vec![mix(
                    vec![
                        (
                            Pattern::Gather {
                                start: r0,
                                region_bytes: MB,
                            },
                            0.4,
                        ),
                        (
                            Pattern::Loop {
                                start: r1,
                                working_set_bytes: 512 * KB,
                                stride: 64,
                            },
                            0.4,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 1536 * KB,
                                advance_lines: 6144,
                                region_bytes: 24 * MB,
                            },
                            0.2,
                        ),
                    ],
                    1 << 20,
                )],
            ),
            H264ref => base(
                self.name(),
                3.6,
                0.30,
                vec![mix(
                    vec![
                        (
                            Pattern::Loop {
                                start: r0,
                                working_set_bytes: MB,
                                stride: 64,
                            },
                            0.55,
                        ),
                        (
                            Pattern::SlidingWindow {
                                start: r2,
                                window_bytes: 2 * MB,
                                advance_lines: 8192,
                                region_bytes: 32 * MB,
                            },
                            0.2,
                        ),
                        (
                            Pattern::Stream {
                                start: r1,
                                stride: 64,
                                region_bytes: 16 * MB,
                            },
                            0.25,
                        ),
                    ],
                    1 << 20,
                )],
            ),
        }
    }
}

impl std::fmt::Display for Spec2006 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_nine_benchmarks() {
        assert_eq!(Spec2006::all().len(), 29);
        let mut names: Vec<&str> = Spec2006::all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29, "names are unique");
    }

    #[test]
    fn every_workload_generates() {
        for b in Spec2006::all() {
            let spec = b.workload();
            assert_eq!(spec.name, b.name());
            let accesses: Vec<_> = spec.generator(0).take(100).collect();
            assert_eq!(accesses.len(), 100);
        }
    }

    #[test]
    fn from_name_round_trips() {
        for b in Spec2006::all() {
            assert_eq!(Spec2006::from_name(b.name()), Some(b));
        }
        assert_eq!(Spec2006::from_name("999.nothing"), None);
    }

    #[test]
    fn memory_intensive_subset_matches_paper_figure_13() {
        let subset = Spec2006::paper_memory_intensive();
        assert_eq!(subset.len(), 11);
        assert!(subset.contains(&Spec2006::Libquantum));
        assert!(subset.contains(&Spec2006::Mcf));
        assert!(subset.contains(&Spec2006::CactusADM));
        assert!(!subset.contains(&Spec2006::DealII));
        assert!(!subset.contains(&Spec2006::Gamess));
    }

    #[test]
    fn simpoint_weights_sum_to_one() {
        for b in Spec2006::all() {
            let sps = b.simpoints();
            let total: f64 = sps.iter().map(|s| s.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", b.name());
            assert!(sps.iter().all(|s| s.weight > 0.0));
        }
    }

    #[test]
    fn libquantum_is_pure_streaming() {
        let spec = Spec2006::Libquantum.workload();
        let addrs: Vec<u64> = spec.generator(0).take(50).map(|a| a.addr).collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1], w[0] + 64, "strictly sequential");
        }
    }

    #[test]
    fn scaled_down_preserves_structure() {
        let spec = Spec2006::CactusADM.workload().scaled_down(3);
        // 4864 KB / 8 = 608 KB loop.
        let has_small_loop = spec.phases.iter().any(|p| {
            p.components.iter().any(|c| {
                matches!(c.pattern, Pattern::Loop { working_set_bytes, .. }
                    if working_set_bytes == 608 * 1024)
            })
        });
        assert!(has_small_loop);
    }

    #[test]
    fn distinct_benchmarks_have_distinct_streams() {
        let a: Vec<_> = Spec2006::Mcf.workload().generator(0).take(50).collect();
        let b: Vec<_> = Spec2006::Gcc.workload().generator(0).take(50).collect();
        assert_ne!(a, b);
    }
}
