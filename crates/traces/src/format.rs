//! A self-describing binary trace container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header:  magic "PLRUTRC1" (8 bytes) | version u32
//! records: kind u8 (0=read, 1=write, 2=writeback) | addr u64 | pc u64 | icount_delta u32
//! footer:  sentinel 0xFF | record_count u64 | crc32 u32
//! ```
//!
//! The CRC covers every record byte (not the header or footer), so
//! truncation and corruption are both detected. Readers are streaming
//! (`Iterator`), writers are append-only — no `Seek` bound, so traces can
//! be piped.

use sim_core::{Access, AccessKind};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// File magic, 8 bytes.
pub const MAGIC: &[u8; 8] = b"PLRUTRC1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Record-kind byte marking the footer.
const FOOTER_SENTINEL: u8 = 0xFF;

/// Error reading or writing a trace container.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// Unsupported format version.
    BadVersion(u32),
    /// A record carried an unknown kind byte.
    BadKind(u8),
    /// The stream ended mid-record or without a footer.
    Truncated,
    /// The footer's record count disagrees with the records read.
    CountMismatch {
        /// Count claimed by the footer.
        expected: u64,
        /// Records actually read.
        got: u64,
    },
    /// The footer's CRC disagrees with the records read.
    CrcMismatch {
        /// CRC claimed by the footer.
        expected: u32,
        /// CRC computed over the records read.
        got: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "not a trace file (magic {m:02x?})"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadKind(k) => write!(f, "unknown record kind {k:#x}"),
            TraceError::Truncated => write!(f, "trace truncated mid-record or missing footer"),
            TraceError::CountMismatch { expected, got } => {
                write!(f, "footer claims {expected} records, read {got}")
            }
            TraceError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "crc mismatch: footer {expected:#010x}, computed {got:#010x}"
                )
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Streaming CRC-32 (IEEE 802.3, reflected) used by the container.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let mut cur = (self.state ^ u32::from(b)) & 0xff;
            for _ in 0..8 {
                cur = if cur & 1 == 1 {
                    (cur >> 1) ^ 0xedb8_8320
                } else {
                    cur >> 1
                };
            }
            self.state = (self.state >> 8) ^ cur;
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

fn kind_to_byte(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Writeback => 2,
    }
}

fn kind_from_byte(b: u8) -> Result<AccessKind, TraceError> {
    match b {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        2 => Ok(AccessKind::Writeback),
        other => Err(TraceError::BadKind(other)),
    }
}

fn encode_record(a: &Access) -> [u8; 21] {
    let mut buf = [0u8; 21];
    buf[0] = kind_to_byte(a.kind);
    buf[1..9].copy_from_slice(&a.addr.to_le_bytes());
    buf[9..17].copy_from_slice(&a.pc.to_le_bytes());
    buf[17..21].copy_from_slice(&a.icount_delta.to_le_bytes());
    buf
}

/// Writes a trace container to any [`Write`] sink.
///
/// Remember that `&mut W` also implements `Write`, so a writer can borrow
/// a sink the caller keeps.
///
/// # Example
///
/// ```
/// use sim_core::Access;
/// use traces::{TraceReader, TraceWriter};
///
/// # fn main() -> Result<(), traces::TraceError> {
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf)?;
/// w.write(&Access::read(0x1000, 0x400))?;
/// w.finish()?;
///
/// let accesses: Vec<_> =
///     TraceReader::new(&buf[..])?.collect::<Result<_, _>>()?;
/// assert_eq!(accesses.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    crc: Crc32,
    count: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the sink.
    pub fn new(mut sink: W) -> Result<Self, TraceError> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            sink,
            crc: Crc32::new(),
            count: 0,
            finished: false,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the sink.
    pub fn write(&mut self, access: &Access) -> Result<(), TraceError> {
        debug_assert!(!self.finished, "write after finish");
        let rec = encode_record(access);
        self.crc.update(&rec);
        self.sink.write_all(&rec)?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the footer and flushes. Must be called exactly once; dropping
    /// an unfinished writer leaves a truncated (detectable) file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.sink.write_all(&[FOOTER_SENTINEL])?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.write_all(&self.crc.finish().to_le_bytes())?;
        self.sink.flush()?;
        self.finished = true;
        Ok(self.sink)
    }
}

/// Streams records out of a trace container.
///
/// Iterates `Result<Access, TraceError>`; the footer's count and CRC are
/// verified when the sentinel is reached, so consuming the whole iterator
/// validates integrity end-to-end.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    crc: Crc32,
    count: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Creates a reader, consuming and validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadMagic`] / [`TraceError::BadVersion`] for
    /// foreign input, or an I/O error.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        source
            .read_exact(&mut magic)
            .map_err(|_| TraceError::Truncated)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut ver = [0u8; 4];
        source
            .read_exact(&mut ver)
            .map_err(|_| TraceError::Truncated)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        Ok(TraceReader {
            source,
            crc: Crc32::new(),
            count: 0,
            done: false,
        })
    }

    fn read_footer(&mut self) -> Result<(), TraceError> {
        let mut buf = [0u8; 12];
        self.source
            .read_exact(&mut buf)
            .map_err(|_| TraceError::Truncated)?;
        let expected_count = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let expected_crc = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if expected_count != self.count {
            return Err(TraceError::CountMismatch {
                expected: expected_count,
                got: self.count,
            });
        }
        let got = self.crc.finish();
        if expected_crc != got {
            return Err(TraceError::CrcMismatch {
                expected: expected_crc,
                got,
            });
        }
        Ok(())
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Access, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut kind_byte = [0u8; 1];
        if let Err(_e) = self.source.read_exact(&mut kind_byte) {
            self.done = true;
            return Some(Err(TraceError::Truncated));
        }
        if kind_byte[0] == FOOTER_SENTINEL {
            self.done = true;
            return match self.read_footer() {
                Ok(()) => None,
                Err(e) => Some(Err(e)),
            };
        }
        let mut rest = [0u8; 20];
        if self.source.read_exact(&mut rest).is_err() {
            self.done = true;
            return Some(Err(TraceError::Truncated));
        }
        let kind = match kind_from_byte(kind_byte[0]) {
            Ok(k) => k,
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        };
        self.crc.update(&kind_byte);
        self.crc.update(&rest);
        self.count += 1;
        Some(Ok(Access {
            kind,
            addr: u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes")),
            pc: u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes")),
            icount_delta: u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes")),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_accesses() -> Vec<Access> {
        vec![
            Access::read(0x1000, 0x400).with_icount_delta(3),
            Access::write(0xdead_beef, 0x404).with_icount_delta(1),
            Access {
                addr: 0xffff_ffff_ffff_ffc0,
                pc: 0,
                kind: AccessKind::Writeback,
                icount_delta: 0,
            },
        ]
    }

    fn write_all(accesses: &[Access]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf).unwrap();
        for a in accesses {
            w.write(a).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_accesses();
        let buf = write_all(&original);
        let read: Vec<Access> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(read, original);
    }

    #[test]
    fn empty_trace_round_trips() {
        let buf = write_all(&[]);
        let read: Vec<Access> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(read.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = write_all(&sample_accesses());
        buf[0] = b'X';
        assert!(matches!(
            TraceReader::new(&buf[..]),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = write_all(&[]);
        buf[8] = 99;
        assert!(matches!(
            TraceReader::new(&buf[..]),
            Err(TraceError::BadVersion(99))
        ));
    }

    #[test]
    fn detects_truncation() {
        let buf = write_all(&sample_accesses());
        let cut = &buf[..buf.len() - 6]; // footer chopped
        let result: Result<Vec<Access>, _> = TraceReader::new(cut).unwrap().collect();
        assert!(matches!(result, Err(TraceError::Truncated)));
    }

    #[test]
    fn detects_corrupted_record() {
        let mut buf = write_all(&sample_accesses());
        // Flip a bit in the first record's address.
        buf[14] ^= 0x40;
        let result: Result<Vec<Access>, _> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(matches!(result, Err(TraceError::CrcMismatch { .. })));
    }

    #[test]
    fn detects_unknown_kind() {
        let mut buf = write_all(&sample_accesses());
        buf[12] = 7; // first record's kind byte
        let result: Result<Vec<Access>, _> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(matches!(result, Err(TraceError::BadKind(7))));
    }

    #[test]
    fn detects_count_mismatch() {
        let mut buf = write_all(&sample_accesses());
        // Patch the footer count (bytes after sentinel) to a lie, and fix
        // nothing else: count check happens before crc.
        let footer_count_offset = buf.len() - 12;
        buf[footer_count_offset] = 9;
        let result: Result<Vec<Access>, _> = TraceReader::new(&buf[..]).unwrap().collect();
        assert!(matches!(
            result,
            Err(TraceError::CountMismatch {
                expected: 9,
                got: 3
            })
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926 (classic check value).
        let mut c = Crc32::new();
        c.update(b"123456789");
        assert_eq!(c.finish(), 0xcbf4_3926);
    }

    #[test]
    fn large_trace_round_trip() {
        let accesses: Vec<Access> = (0..10_000u64)
            .map(|i| Access::read(i * 64, 0x400 + (i % 7) * 4).with_icount_delta((i % 11) as u32))
            .collect();
        let buf = write_all(&accesses);
        let read: Vec<Access> = TraceReader::new(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(read, accesses);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            TraceError::BadMagic(*b"notamagi"),
            TraceError::BadVersion(2),
            TraceError::BadKind(9),
            TraceError::Truncated,
            TraceError::CountMismatch {
                expected: 1,
                got: 2,
            },
            TraceError::CrcMismatch {
                expected: 1,
                got: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
