//! Composable synthetic access-pattern generators.
//!
//! A [`WorkloadSpec`] describes a program as a sequence of [`Phase`]s, each
//! a weighted mixture of primitive [`Pattern`]s (streams, loops, gathers,
//! pointer chases). A [`WorkloadGen`] turns the spec into a deterministic,
//! endless iterator of [`Access`]es. The primitives were chosen to span the
//! reuse-distance behaviours that drive last-level-cache replacement:
//! zero-reuse streaming, capacity-scale looping, irregular gathers, and
//! dependent pointer chasing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_core::{Access, AccessKind};

/// A primitive access pattern. All sizes are in bytes; generated addresses
/// are line-aligned (64-byte lines assumed for alignment only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential streaming through a large region with zero short-range
    /// reuse (the "zero-reuse blocks" of the paper's Section 2.2). Wraps
    /// after `region_bytes`, so reuse exists only at region scale.
    Stream {
        /// Base byte address of the region.
        start: u64,
        /// Distance between consecutive accesses.
        stride: u64,
        /// Region size before wrapping.
        region_bytes: u64,
    },
    /// Repeated in-order sweep over a fixed working set: uniform reuse
    /// distance equal to the working-set size.
    Loop {
        /// Base byte address of the working set.
        start: u64,
        /// Working-set size.
        working_set_bytes: u64,
        /// Distance between consecutive accesses.
        stride: u64,
    },
    /// Uniformly random accesses within a region: geometric-ish reuse
    /// distances, models hash tables and sparse solvers.
    Gather {
        /// Base byte address of the region.
        start: u64,
        /// Region size.
        region_bytes: u64,
    },
    /// A dependent pointer chase over a pseudo-random full-cycle
    /// permutation of `nodes` cache lines: irregular but eventually
    /// revisits every node (reuse distance = node count).
    PointerChase {
        /// Base byte address of the node pool.
        start: u64,
        /// Number of 64-byte nodes; must be a power of two.
        nodes: u64,
    },
    /// Repeated sweeps over a window that slides through a larger region:
    /// each block is reused once per sweep for a bounded number of sweeps,
    /// then never again. Strongly recency-friendly — the pattern where
    /// classic LRU is near-optimal and early-eviction insertion policies
    /// (LIP/BRRIP/PLRU-insertion) lose, used to model the paper's
    /// 447.dealII regression case.
    SlidingWindow {
        /// Base byte address of the region.
        start: u64,
        /// Size of the actively swept window.
        window_bytes: u64,
        /// Lines the window advances after each full sweep (the block
        /// lifetime is `window_bytes / 64 / advance_lines` sweeps).
        advance_lines: u64,
        /// Total region the window wraps within.
        region_bytes: u64,
    },
}

/// Per-pattern generator state.
#[derive(Debug, Clone)]
struct PatternState {
    pattern: Pattern,
    cursor: u64,
    /// Window base for [`Pattern::SlidingWindow`].
    window_base: u64,
    /// PCs attributed to this pattern's accesses (a small pool, so
    /// PC-indexed policies such as SHiP see realistic locality).
    pcs: [u64; 4],
}

impl PatternState {
    fn new(pattern: Pattern, pc_seed: u64) -> Self {
        let base = 0x40_0000 + (pc_seed % 0xffff) * 0x40;
        PatternState {
            pattern,
            cursor: 0,
            window_base: 0,
            pcs: [base, base + 8, base + 16, base + 24],
        }
    }

    fn next_addr(&mut self, rng: &mut StdRng) -> u64 {
        match self.pattern {
            Pattern::Stream {
                start,
                stride,
                region_bytes,
            } => {
                let offset = (self.cursor * stride) % region_bytes.max(stride);
                self.cursor += 1;
                start + (offset & !63)
            }
            Pattern::Loop {
                start,
                working_set_bytes,
                stride,
            } => {
                let offset = (self.cursor * stride) % working_set_bytes.max(stride);
                self.cursor += 1;
                start + (offset & !63)
            }
            Pattern::Gather {
                start,
                region_bytes,
            } => {
                let lines = (region_bytes / 64).max(1);
                start + rng.gen_range(0..lines) * 64
            }
            Pattern::PointerChase { start, nodes } => {
                debug_assert!(nodes.is_power_of_two());
                // Full-period LCG over the node index space: c odd,
                // a ≡ 1 (mod 4) gives period 2^k (Hull–Dobell).
                self.cursor = (self.cursor.wrapping_mul(0xd1342543de82ef95 & !3 | 1))
                    .wrapping_add(0x9e3779b97f4a7c15 | 1)
                    & (nodes - 1);
                start + self.cursor * 64
            }
            Pattern::SlidingWindow {
                start,
                window_bytes,
                advance_lines,
                region_bytes,
            } => {
                let window_lines = (window_bytes / 64).max(1);
                let region_lines = (region_bytes / 64).max(window_lines);
                let line = (self.window_base + self.cursor) % region_lines;
                self.cursor += 1;
                if self.cursor >= window_lines {
                    self.cursor = 0;
                    self.window_base = (self.window_base + advance_lines.max(1)) % region_lines;
                }
                start + line * 64
            }
        }
    }

    fn pc(&self, rng: &mut StdRng) -> u64 {
        self.pcs[rng.gen_range(0..4)]
    }
}

/// One weighted pattern inside a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// The pattern.
    pub pattern: Pattern,
    /// Relative share of the phase's accesses this pattern receives.
    pub weight: f64,
}

/// A program phase: a mixture of patterns active for `accesses` references.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Pattern mixture (weights need not sum to one).
    pub components: Vec<Component>,
    /// Accesses spent in this phase before moving to the next (phases
    /// repeat cyclically).
    pub accesses: u64,
}

impl Phase {
    /// A single-pattern phase.
    pub fn uniform(pattern: Pattern, accesses: u64) -> Self {
        Phase {
            components: vec![Component {
                pattern,
                weight: 1.0,
            }],
            accesses,
        }
    }
}

/// A complete synthetic workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Display name (e.g. `"462.libquantum"`).
    pub name: String,
    /// Base RNG seed; generators add the simpoint index.
    pub seed: u64,
    /// Mean instructions per memory access (≥ 1); drives `icount_delta`.
    pub instructions_per_access: f64,
    /// Fraction of accesses that are stores.
    pub write_ratio: f64,
    /// The phase schedule (repeats cyclically).
    pub phases: Vec<Phase>,
}

impl WorkloadSpec {
    /// Creates an endless deterministic generator for this spec.
    /// `variant` perturbs the seed (used for simpoints).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases or a phase has no components.
    pub fn generator(&self, variant: u64) -> WorkloadGen {
        WorkloadGen::new(self, variant)
    }

    /// Returns a copy with every working-set/region size divided by
    /// `2^shift` (floored at one cache line). Used to run the paper's
    /// workload suite against proportionally smaller caches so quick test
    /// and benchmark runs keep the same capacity *ratios*.
    pub fn scaled_down(&self, shift: u32) -> WorkloadSpec {
        let scale = |bytes: u64| (bytes >> shift).max(64);
        let mut spec = self.clone();
        for phase in &mut spec.phases {
            for comp in &mut phase.components {
                comp.pattern = match comp.pattern {
                    Pattern::Stream {
                        start,
                        stride,
                        region_bytes,
                    } => Pattern::Stream {
                        start,
                        stride,
                        region_bytes: scale(region_bytes),
                    },
                    Pattern::Loop {
                        start,
                        working_set_bytes,
                        stride,
                    } => Pattern::Loop {
                        start,
                        working_set_bytes: scale(working_set_bytes),
                        stride,
                    },
                    Pattern::Gather {
                        start,
                        region_bytes,
                    } => Pattern::Gather {
                        start,
                        region_bytes: scale(region_bytes),
                    },
                    Pattern::PointerChase { start, nodes } => Pattern::PointerChase {
                        start,
                        nodes: (nodes >> shift).max(2).next_power_of_two(),
                    },
                    Pattern::SlidingWindow {
                        start,
                        window_bytes,
                        advance_lines,
                        region_bytes,
                    } => Pattern::SlidingWindow {
                        start,
                        window_bytes: scale(window_bytes),
                        advance_lines: (advance_lines >> shift).max(1),
                        region_bytes: scale(region_bytes),
                    },
                };
            }
        }
        spec
    }
}

/// An endless iterator of [`Access`]es drawn from a [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    rng: StdRng,
    phases: Vec<(Vec<PatternState>, Vec<f64>, u64)>,
    phase_idx: usize,
    in_phase: u64,
    instructions_per_access: f64,
    write_ratio: f64,
}

impl WorkloadGen {
    fn new(spec: &WorkloadSpec, variant: u64) -> Self {
        assert!(
            !spec.phases.is_empty(),
            "workload {} has no phases",
            spec.name
        );
        let mut pc_seed = spec.seed;
        let phases = spec
            .phases
            .iter()
            .map(|phase| {
                assert!(
                    !phase.components.is_empty(),
                    "workload {} has an empty phase",
                    spec.name
                );
                let states: Vec<PatternState> = phase
                    .components
                    .iter()
                    .map(|c| {
                        pc_seed = pc_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        PatternState::new(c.pattern, pc_seed)
                    })
                    .collect();
                let total: f64 = phase.components.iter().map(|c| c.weight).sum();
                let mut acc = 0.0;
                let cumulative: Vec<f64> = phase
                    .components
                    .iter()
                    .map(|c| {
                        acc += c.weight / total;
                        acc
                    })
                    .collect();
                (states, cumulative, phase.accesses.max(1))
            })
            .collect();
        WorkloadGen {
            rng: StdRng::seed_from_u64(spec.seed ^ variant.wrapping_mul(0x9e3779b97f4a7c15)),
            phases,
            phase_idx: 0,
            in_phase: 0,
            instructions_per_access: spec.instructions_per_access.max(1.0),
            write_ratio: spec.write_ratio.clamp(0.0, 1.0),
        }
    }
}

impl Iterator for WorkloadGen {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let (states, cumulative, len) = &mut self.phases[self.phase_idx];
        // Pick a component by weight.
        let r: f64 = self.rng.gen();
        let idx = cumulative
            .iter()
            .position(|&c| r <= c)
            .unwrap_or(states.len() - 1);
        let addr = states[idx].next_addr(&mut self.rng);
        let pc = states[idx].pc(&mut self.rng);
        // Geometric instruction gap with the requested mean.
        let mean = self.instructions_per_access;
        let gap = if mean <= 1.0 {
            1
        } else {
            let p = 1.0 / mean;
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            (1.0 + (u.ln() / (1.0 - p).ln())).floor().min(1000.0) as u32
        };
        let kind = if self.rng.gen_bool(self.write_ratio) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Advance the phase schedule.
        self.in_phase += 1;
        if self.in_phase >= *len {
            self.in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.phases.len();
        }
        Some(Access {
            addr,
            pc,
            kind,
            icount_delta: gap.max(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test-stream".into(),
            seed: 1,
            instructions_per_access: 3.0,
            write_ratio: 0.25,
            phases: vec![Phase::uniform(
                Pattern::Stream {
                    start: 0,
                    stride: 64,
                    region_bytes: 1 << 30,
                },
                1000,
            )],
        }
    }

    #[test]
    fn stream_is_sequential_and_line_aligned() {
        let accesses: Vec<Access> = stream_spec().generator(0).take(100).collect();
        for (i, a) in accesses.iter().enumerate() {
            assert_eq!(a.addr, i as u64 * 64);
            assert_eq!(a.addr % 64, 0);
        }
    }

    #[test]
    fn loop_pattern_wraps_at_working_set() {
        let spec = WorkloadSpec {
            name: "test-loop".into(),
            seed: 2,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![Phase::uniform(
                Pattern::Loop {
                    start: 4096,
                    working_set_bytes: 256,
                    stride: 64,
                },
                100,
            )],
        };
        let addrs: Vec<u64> = spec.generator(0).take(8).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![4096, 4160, 4224, 4288, 4096, 4160, 4224, 4288]);
    }

    #[test]
    fn gather_stays_in_region() {
        let spec = WorkloadSpec {
            name: "test-gather".into(),
            seed: 3,
            instructions_per_access: 2.0,
            write_ratio: 0.0,
            phases: vec![Phase::uniform(
                Pattern::Gather {
                    start: 1 << 20,
                    region_bytes: 1 << 16,
                },
                100,
            )],
        };
        for a in spec.generator(0).take(1000) {
            assert!(a.addr >= 1 << 20);
            assert!(a.addr < (1 << 20) + (1 << 16));
            assert_eq!(a.addr % 64, 0);
        }
    }

    #[test]
    fn pointer_chase_visits_every_node() {
        let spec = WorkloadSpec {
            name: "test-chase".into(),
            seed: 4,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![Phase::uniform(
                Pattern::PointerChase {
                    start: 0,
                    nodes: 64,
                },
                100,
            )],
        };
        let mut seen = std::collections::HashSet::new();
        for a in spec.generator(0).take(64) {
            seen.insert(a.addr);
        }
        assert_eq!(seen.len(), 64, "full-period permutation covers all nodes");
    }

    #[test]
    fn sliding_window_sweeps_then_advances() {
        let spec = WorkloadSpec {
            name: "test-slide".into(),
            seed: 11,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![Phase::uniform(
                Pattern::SlidingWindow {
                    start: 0,
                    window_bytes: 256, // 4 lines
                    advance_lines: 2,
                    region_bytes: 1024, // 16 lines
                },
                100,
            )],
        };
        let addrs: Vec<u64> = spec.generator(0).take(10).map(|a| a.addr / 64).collect();
        // First sweep: lines 0..4; then the window advances by 2.
        assert_eq!(&addrs[0..4], &[0, 1, 2, 3]);
        assert_eq!(&addrs[4..8], &[2, 3, 4, 5]);
        assert_eq!(&addrs[8..10], &[4, 5]);
    }

    #[test]
    fn sliding_window_blocks_have_bounded_lifetime() {
        let spec = WorkloadSpec {
            name: "test-slide-life".into(),
            seed: 12,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![Phase::uniform(
                Pattern::SlidingWindow {
                    start: 0,
                    window_bytes: 512, // 8 lines
                    advance_lines: 4,
                    region_bytes: 1 << 20,
                },
                1000,
            )],
        };
        // An interior line x is swept while base ∈ (x-8, x], i.e. for
        // window/advance = 2 sweeps, then never again.
        let addrs: Vec<u64> = spec.generator(0).take(200).map(|a| a.addr / 64).collect();
        let uses = addrs.iter().filter(|&&l| l == 5).count();
        assert_eq!(uses, 2, "each block reused a bounded number of times");
    }

    #[test]
    fn generator_is_deterministic_per_variant() {
        let spec = stream_spec();
        let a: Vec<Access> = spec.generator(5).take(200).collect();
        let b: Vec<Access> = spec.generator(5).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<Access> = spec.generator(6).take(200).collect();
        assert_ne!(a, c, "different variants differ");
    }

    #[test]
    fn write_ratio_is_respected() {
        let accesses: Vec<Access> = stream_spec().generator(0).take(10_000).collect();
        let writes = accesses.iter().filter(|a| a.is_write()).count();
        let ratio = writes as f64 / accesses.len() as f64;
        assert!((ratio - 0.25).abs() < 0.03, "write ratio {ratio}");
    }

    #[test]
    fn instruction_gap_mean_is_close() {
        let accesses: Vec<Access> = stream_spec().generator(0).take(20_000).collect();
        let total: u64 = accesses.iter().map(|a| u64::from(a.icount_delta)).sum();
        let mean = total as f64 / accesses.len() as f64;
        assert!((mean - 3.0).abs() < 0.25, "icount mean {mean}");
    }

    #[test]
    fn phases_alternate() {
        let spec = WorkloadSpec {
            name: "test-phases".into(),
            seed: 9,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![
                Phase::uniform(
                    Pattern::Loop {
                        start: 0,
                        working_set_bytes: 64,
                        stride: 64,
                    },
                    3,
                ),
                Phase::uniform(
                    Pattern::Loop {
                        start: 1 << 30,
                        working_set_bytes: 64,
                        stride: 64,
                    },
                    2,
                ),
            ],
        };
        let addrs: Vec<u64> = spec.generator(0).take(10).map(|a| a.addr).collect();
        assert_eq!(&addrs[0..3], &[0, 0, 0]);
        assert_eq!(&addrs[3..5], &[1 << 30, 1 << 30]);
        assert_eq!(&addrs[5..8], &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "no phases")]
    fn empty_spec_panics() {
        let spec = WorkloadSpec {
            name: "empty".into(),
            seed: 0,
            instructions_per_access: 1.0,
            write_ratio: 0.0,
            phases: vec![],
        };
        let _ = spec.generator(0);
    }
}
