//! Command-line trace tooling.
//!
//! ```text
//! trace-tool gen <benchmark> <n-accesses> <out.trc> [shift]
//! trace-tool info <file.trc>
//! trace-tool validate <file.trc>
//! trace-tool list
//! ```

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use traces::spec2006::Spec2006;
use traces::{TraceReader, TraceWriter};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-tool gen <benchmark> <n-accesses> <out.trc> [scale-shift]\n  \
         trace-tool gen-custom <spec-file> <n-accesses> <out.trc>\n  \
         trace-tool info <file.trc>\n  trace-tool validate <file.trc>\n  trace-tool list\n\n\
         (see `traces::dsl` docs for the custom workload grammar)"
    );
    ExitCode::from(2)
}

fn write_trace(spec: &traces::WorkloadSpec, n: usize, path: &str) -> Result<(), String> {
    // Streams arbitrarily large traces straight to the user-named file;
    // buffering everything for an atomic rename would defeat the tool.
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?; // lint: direct-write
    let mut writer = TraceWriter::new(BufWriter::new(file)).map_err(|e| format!("header: {e}"))?;
    for a in spec.generator(0).take(n) {
        writer.write(&a).map_err(|e| format!("write: {e}"))?;
    }
    writer.finish().map_err(|e| format!("finish: {e}"))?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for b in Spec2006::all() {
                println!("{b}");
            }
            ExitCode::SUCCESS
        }
        Some("gen") if args.len() >= 4 => {
            let Some(bench) = Spec2006::from_name(&args[1]) else {
                eprintln!("unknown benchmark {:?} (see `trace-tool list`)", args[1]);
                return ExitCode::FAILURE;
            };
            let Ok(n) = args[2].parse::<usize>() else {
                eprintln!("bad access count {:?}", args[2]);
                return ExitCode::FAILURE;
            };
            let shift: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0);
            let path = &args[3];
            if let Err(e) = write_trace(&bench.workload().scaled_down(shift), n, path) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {n} records of {bench} (shift {shift}) to {path}");
            ExitCode::SUCCESS
        }
        Some("gen-custom") if args.len() >= 4 => {
            let input = match std::fs::read_to_string(&args[1]) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let spec = match traces::parse_spec(&input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let Ok(n) = args[2].parse::<usize>() else {
                eprintln!("bad access count {:?}", args[2]);
                return ExitCode::FAILURE;
            };
            let path = &args[3];
            if let Err(e) = write_trace(&spec, n, path) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {n} records of custom workload {:?} to {path}",
                spec.name
            );
            ExitCode::SUCCESS
        }
        Some(cmd @ ("info" | "validate")) if args.len() >= 2 => {
            let path = &args[1];
            let file = match File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reader = match TraceReader::new(BufReader::new(file)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut records = 0u64;
            let mut writes = 0u64;
            let mut instructions = 0u64;
            let mut blocks: HashSet<u64> = HashSet::new();
            for item in reader {
                match item {
                    Ok(a) => {
                        records += 1;
                        instructions += u64::from(a.icount_delta);
                        if a.is_write() {
                            writes += 1;
                        }
                        if cmd == "info" {
                            blocks.insert(a.addr >> 6);
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: INVALID — {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if cmd == "validate" {
                println!("{path}: OK ({records} records, CRC verified)");
            } else {
                println!("{path}:");
                println!("  records:         {records}");
                println!("  instructions:    {instructions}");
                println!(
                    "  writes:          {writes} ({:.1}%)",
                    writes as f64 * 100.0 / records.max(1) as f64
                );
                println!(
                    "  distinct blocks: {} ({} KB footprint)",
                    blocks.len(),
                    blocks.len() / 16
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
