#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Memory-reference traces: a binary container format and synthetic
//! SPEC CPU 2006 workload models.
//!
//! The paper drives its experiments with SPEC CPU 2006 traces collected
//! through CMP$im/Valgrind simpoints. Those traces are proprietary, so this
//! crate substitutes **deterministic synthetic workload models**: one
//! parameterised generator per SPEC benchmark, tuned to that benchmark's
//! published last-level-cache personality (streaming vs. looping vs.
//! irregular, working-set size, write ratio, phase structure). What a
//! replacement policy observes — the reuse-distance mixture of the access
//! stream — is reproduced; absolute miss rates are not claimed to match
//! the originals. See `DESIGN.md` §2 for the substitution rationale.
//!
//! * [`format`](mod@format) — a self-describing binary trace container (magic, version,
//!   CRC-protected) with streaming [`TraceWriter`]/[`TraceReader`].
//! * [`synth`] — composable access-pattern generators ([`Pattern`],
//!   [`WorkloadSpec`], [`WorkloadGen`]).
//! * [`spec2006`] — the 29 benchmark models ([`Spec2006`]) with
//!   simpoint-style weighted segments.
//!
//! # Example
//!
//! ```
//! use traces::spec2006::Spec2006;
//!
//! // 10k accesses of the synthetic 462.libquantum model (pure streaming).
//! let accesses: Vec<_> = Spec2006::Libquantum.workload().generator(0).take(10_000).collect();
//! assert_eq!(accesses.len(), 10_000);
//! ```

pub mod dsl;
pub mod format;
pub mod spec2006;
pub mod synth;

pub use dsl::{parse_spec, ParseSpecError};
pub use format::{TraceError, TraceReader, TraceWriter};
pub use spec2006::{Simpoint, Spec2006};
pub use synth::{Pattern, Phase, WorkloadGen, WorkloadSpec};
