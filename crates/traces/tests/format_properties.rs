//! Property-based tests for the trace container: round-trip fidelity and
//! corruption detection under arbitrary byte damage.

use proptest::prelude::*;
use sim_core::{Access, AccessKind};
use traces::{TraceReader, TraceWriter};

fn arb_access() -> impl Strategy<Value = Access> {
    (any::<u64>(), any::<u64>(), 0u8..3, any::<u32>()).prop_map(|(addr, pc, kind, delta)| Access {
        addr,
        pc,
        kind: match kind {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => AccessKind::Writeback,
        },
        icount_delta: delta,
    })
}

fn encode(accesses: &[Access]) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = TraceWriter::new(&mut buf).unwrap();
    for a in accesses {
        w.write(a).unwrap();
    }
    w.finish().unwrap();
    buf
}

proptest! {
    /// Any sequence of records round-trips exactly.
    #[test]
    fn round_trip(accesses in proptest::collection::vec(arb_access(), 0..200)) {
        let buf = encode(&accesses);
        let read: Vec<Access> =
            TraceReader::new(&buf[..]).unwrap().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(read, accesses);
    }

    /// Flipping any single bit anywhere after the header makes the reader
    /// report an error (CRC, count, kind, truncation, or version — it must
    /// never silently deliver a corrupted trace).
    #[test]
    fn single_bitflip_is_always_detected(
        accesses in proptest::collection::vec(arb_access(), 1..50),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut buf = encode(&accesses);
        // Damage anywhere except the 8-byte magic (a magic flip is
        // detected trivially at open; include version bytes and beyond).
        let lo = 8usize;
        let idx = lo + ((buf.len() - lo - 1) as f64 * byte_frac) as usize;
        buf[idx] ^= 1 << bit;
        let outcome: Result<Vec<Access>, _> = match TraceReader::new(&buf[..]) {
            Ok(reader) => reader.collect(),
            Err(e) => Err(e),
        };
        match outcome {
            Err(_) => {} // detected — good
            Ok(read) => {
                // The only acceptable "success" is if the flip somehow
                // produced the identical payload (impossible for a single
                // bit, but keep the check total).
                prop_assert_eq!(read, accesses, "corruption slipped through undetected");
            }
        }
    }

    /// Truncating the container at any point strictly inside the payload
    /// is detected.
    #[test]
    fn truncation_is_always_detected(
        accesses in proptest::collection::vec(arb_access(), 1..50),
        cut_frac in 0.0f64..1.0,
    ) {
        let buf = encode(&accesses);
        // Cut strictly before the end (keep at least the header).
        let keep = 12 + ((buf.len() - 12 - 1) as f64 * cut_frac) as usize;
        let cut = &buf[..keep];
        let outcome: Result<Vec<Access>, _> = match TraceReader::new(cut) {
            Ok(reader) => reader.collect(),
            Err(e) => Err(e),
        };
        prop_assert!(outcome.is_err(), "truncated at {keep}/{} not detected", buf.len());
    }
}
