//! Malformed-container corpus: the trace reader must answer every damaged
//! input with a typed [`TraceError`] — never a panic, never a silent
//! success, and never an allocation sized by attacker-controlled counts
//! (the reader streams; the footer count is only *verified*, so a footer
//! claiming `u64::MAX` records costs nothing).

use proptest::prelude::*;
use sim_core::Access;
use traces::format::{TraceError, TraceReader, TraceWriter, MAGIC};

/// A well-formed container holding `n` deterministic records.
fn valid_container(n: usize) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    for i in 0..n {
        let a = if i % 3 == 0 {
            Access::write((i as u64) * 64, i as u64)
        } else {
            Access::read((i as u64) * 192 + 7, i as u64)
        };
        w.write(&a.with_icount_delta((i % 9) as u32)).unwrap();
    }
    w.finish().unwrap()
}

/// Drives the reader to completion, returning the first error (if any).
fn scan(bytes: &[u8]) -> Result<usize, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut n = 0;
    for item in &mut reader {
        item?;
        n += 1;
    }
    Ok(n)
}

#[test]
fn oversized_record_count_is_rejected_without_allocation() {
    // Patch the footer's record count to u64::MAX. A reader that trusted
    // it for preallocation would try to reserve ~300 EiB; ours streams and
    // reports the mismatch.
    let mut bytes = valid_container(5);
    let len = bytes.len();
    let count_at = len - 12; // footer: count u64 | crc u32
    bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    match scan(&bytes) {
        Err(TraceError::CountMismatch { expected, got }) => {
            assert_eq!(expected, u64::MAX);
            assert_eq!(got, 5);
        }
        other => panic!("expected CountMismatch, got {other:?}"),
    }
}

#[test]
fn empty_and_header_only_inputs_are_truncation() {
    assert!(matches!(scan(&[]), Err(TraceError::Truncated)));
    assert!(matches!(scan(&MAGIC[..4]), Err(TraceError::Truncated)));
    // Magic alone, no version word.
    assert!(matches!(scan(&MAGIC[..]), Err(TraceError::Truncated)));
    // Wrong magic is its own error, not truncation.
    assert!(matches!(
        scan(b"NOTATRCE\x01\x00\x00\x00"),
        Err(TraceError::BadMagic(_))
    ));
    // Future version.
    let mut v = Vec::from(&MAGIC[..]);
    v.extend_from_slice(&99u32.to_le_bytes());
    assert!(matches!(scan(&v), Err(TraceError::BadVersion(99))));
}

proptest! {
    /// Any truncation of a valid container yields a typed error — except
    /// cutting at the exact end, which is the valid file itself.
    #[test]
    fn truncation_never_panics(n in 0usize..40, frac in 0usize..1000) {
        let bytes = valid_container(n);
        let cut = frac * bytes.len() / 1000;
        let result = scan(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert_eq!(result.unwrap(), n);
        } else {
            prop_assert!(result.is_err(), "cut at {} of {} accepted", cut, bytes.len());
        }
    }

    /// Flipping any single byte of a valid container is always detected:
    /// structural damage surfaces as BadKind/Truncated/BadMagic/BadVersion
    /// mid-stream, payload damage as a CRC or count mismatch at the
    /// footer. No flip may pass silently, and none may panic.
    #[test]
    fn single_byte_corruption_is_always_detected(
        n in 1usize..30,
        pos_frac in 0usize..1000,
        xor in 1u8..255,
    ) {
        let mut bytes = valid_container(n);
        let pos = pos_frac * (bytes.len() - 1) / 999;
        bytes[pos] ^= xor;
        prop_assert!(
            scan(&bytes).is_err(),
            "flip of byte {} by {:#04x} went undetected",
            pos,
            xor
        );
    }

    /// Arbitrary garbage after a valid header parses to a typed error,
    /// never a panic. (Garbage that happens to spell a valid empty tail is
    /// astronomically unlikely but legal, hence no assertion on Err.)
    #[test]
    fn arbitrary_garbage_never_panics(garbage in proptest::collection::vec(0u8..255, 0..256)) {
        let _ = scan(&garbage);
        let mut with_header = Vec::from(&MAGIC[..]);
        with_header.extend_from_slice(&1u32.to_le_bytes());
        with_header.extend_from_slice(&garbage);
        let _ = scan(&with_header);
    }

    /// Concatenating a truncated copy in front of a valid container must
    /// not let records from the second leak into the first's count.
    #[test]
    fn reader_stops_at_first_error(n in 1usize..20, cut_frac in 0usize..999) {
        let bytes = valid_container(n);
        let cut = 12 + cut_frac * (bytes.len() - 12) / 999; // keep the header
        let mut spliced = Vec::from(&bytes[..cut]);
        spliced.extend_from_slice(&valid_container(n + 1));
        let mut reader = TraceReader::new(&spliced[..]).unwrap();
        let mut seen_err = false;
        let mut after_err = 0;
        for item in &mut reader {
            if seen_err {
                after_err += 1;
            }
            if item.is_err() {
                seen_err = true;
            }
        }
        prop_assert_eq!(after_err, 0, "reader kept yielding after an error");
    }
}
