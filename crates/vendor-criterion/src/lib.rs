#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! benchmark groups with [`Throughput`] and sample-size knobs, and
//! `Bencher::iter`.
//!
//! Statistics are intentionally simple: each benchmark runs a short
//! warm-up, then a fixed number of timed samples, and reports the median
//! time per iteration (plus throughput when configured). There is no
//! outlier analysis, plotting, or saved baselines — the numbers are for
//! trajectory tracking, not publication.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher {
            per_iter: Vec::with_capacity(self.sample_size),
            samples: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, id.as_ref(), self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

/// Runs and times one benchmark's iterations.
#[derive(Debug)]
pub struct Bencher {
    per_iter: Vec<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times `routine`, discarding a warm-up pass then recording
    /// `sample_size` samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until ~50ms or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 && warm_start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        self.per_iter.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.per_iter.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.per_iter.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let mut sorted = self.per_iter.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let ns = median.as_nanos().max(1) as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (ns / 1e9);
                println!("{group}/{id}: median {median:?}/iter  ({rate:.3e} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (ns / 1e9);
                println!("{group}/{id}: median {median:?}/iter  ({rate:.3e} B/s)");
            }
            None => println!("{group}/{id}: median {median:?}/iter"),
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(5);
        g.bench_function("sum_1k", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        g.bench_function(format!("sum_{}", 2000), |b| {
            b.iter(|| (0u64..2000).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(smoke, bench_addition);

    #[test]
    fn group_runs_and_reports() {
        smoke();
    }
}
