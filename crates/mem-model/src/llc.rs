//! Fast LLC-only replay of captured access streams.
//!
//! The paper's methodology (Section 4.3): collect a trace of last-level
//! cache accesses, warm the cache on a prefix, and measure misses on the
//! remainder. [`replay_llc`] does exactly that against any policy, and is
//! the hot path of both the genetic algorithm's fitness function and the
//! MPKI experiments.

use crate::cpi::{PerfAccumulator, WindowPerfModel};
use sim_core::{Access, CacheGeometry, CacheStats, ReplacementPolicy, SetAssocCache};

/// The outcome of one LLC replay.
#[derive(Debug, Clone, PartialEq)]
pub struct LlcRunResult {
    /// LLC statistics over the measured (post-warm-up) portion.
    pub stats: CacheStats,
    /// Instructions represented by the measured portion.
    pub instructions: u64,
    /// Cycle estimate over the measured portion (window model; the memory
    /// side counts LLC hits vs. misses, with L1/L2 time excluded since it
    /// is identical across LLC policies).
    pub cycles: f64,
}

impl LlcRunResult {
    /// Misses per thousand instructions over the measured portion.
    pub fn mpki(&self) -> f64 {
        self.stats.mpki(self.instructions)
    }
}

/// Replays `stream` (a captured LLC access stream) into an LLC of `geom`
/// managed by `policy`. The first `warmup` accesses only warm the cache;
/// statistics, instructions, and cycles cover the remainder.
///
/// # Example
///
/// ```
/// use gippr::PlruPolicy;
/// use mem_model::{replay_llc, WindowPerfModel};
/// use sim_core::{Access, CacheGeometry};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::new(16 * 1024, 8, 64)?;
/// let stream: Vec<Access> = (0..1000u64).map(|i| Access::read(i * 64, 0)).collect();
/// let result = replay_llc(&stream, geom, Box::new(PlruPolicy::new(&geom)), 100,
///                         &WindowPerfModel::default());
/// assert_eq!(result.stats.accesses, 900);
/// # Ok(())
/// # }
/// ```
pub fn replay_llc(
    stream: &[Access],
    geom: CacheGeometry,
    policy: Box<dyn ReplacementPolicy>,
    warmup: usize,
    perf: &WindowPerfModel,
) -> LlcRunResult {
    replay_llc_mono(stream, geom, policy, warmup, perf)
}

/// Monomorphized replay: identical semantics to [`replay_llc`], but generic
/// over the policy type so the per-access dispatch, tag scan, and stats
/// update inline into one loop. This is the GA fitness fast path — with a
/// concrete `P` (e.g. `GipprPolicy`, `TrueLru`) there is no virtual call
/// per access; passing a `Box<dyn ReplacementPolicy>` recovers the dynamic
/// behaviour exactly (it is how [`replay_llc`] is implemented).
pub fn replay_llc_mono<P: ReplacementPolicy>(
    stream: &[Access],
    geom: CacheGeometry,
    policy: P,
    warmup: usize,
    perf: &WindowPerfModel,
) -> LlcRunResult {
    let mut cache = SetAssocCache::with_policy(geom, policy);
    let mut acc = PerfAccumulator::new();
    for a in stream.iter().take(warmup) {
        cache.access_fast(a);
    }
    cache.reset_stats();
    for a in stream.iter().skip(warmup) {
        let hit = cache.access_fast(a);
        acc.note_llc(a.icount_delta, hit, perf);
    }
    LlcRunResult {
        stats: *cache.stats(),
        instructions: acc.instructions(),
        cycles: acc.cycles(perf),
    }
}

/// The conventional warm-up split used across the harness: the paper warms
/// on the first 500 M of 1.5 B instructions, i.e. one third of the trace.
pub fn default_warmup(stream_len: usize) -> usize {
    stream_len / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::TrueLru;
    use gippr::{GiplrPolicy, Ipv};

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(16, 4, 64).unwrap()
    }

    fn looping_stream(blocks: u64, n: usize) -> Vec<Access> {
        (0..n)
            .map(|i| Access::read((i as u64 % blocks) * 64, 0).with_icount_delta(3))
            .collect()
    }

    #[test]
    fn warmup_excluded_from_stats() {
        let g = geom();
        let stream = looping_stream(32, 1000); // 32 blocks fit in 64-line cache
        let r = replay_llc(
            &stream,
            g,
            Box::new(TrueLru::new(&g)),
            100,
            &WindowPerfModel::default(),
        );
        assert_eq!(r.stats.accesses, 900);
        assert_eq!(r.stats.misses, 0, "after warm-up the loop fits entirely");
        assert_eq!(r.instructions, 2700);
    }

    #[test]
    fn thrash_loop_misses_everything_under_lru() {
        let g = geom(); // 64 lines
        let stream = looping_stream(96, 3000); // 1.5x capacity loop
        let r = replay_llc(
            &stream,
            g,
            Box::new(TrueLru::new(&g)),
            960,
            &WindowPerfModel::default(),
        );
        assert_eq!(r.stats.hits, 0, "LRU thrashes a loop over capacity");
    }

    #[test]
    fn lip_retains_part_of_thrash_loop() {
        let g = geom();
        let stream = looping_stream(96, 3000);
        let lip = GiplrPolicy::new(&g, Ipv::lru_insertion(4)).unwrap();
        let r = replay_llc(&stream, g, Box::new(lip), 960, &WindowPerfModel::default());
        assert!(
            r.stats.hit_ratio() > 0.4,
            "LRU-insertion keeps a resident fraction: {}",
            r.stats.hit_ratio()
        );
    }

    #[test]
    fn mpki_and_cycles_consistency() {
        let g = geom();
        let stream = looping_stream(96, 3000);
        let r = replay_llc(
            &stream,
            g,
            Box::new(TrueLru::new(&g)),
            0,
            &WindowPerfModel::default(),
        );
        assert!(r.mpki() > 0.0);
        assert!(r.cycles > 0.0);
    }

    #[test]
    fn default_warmup_is_one_third() {
        assert_eq!(default_warmup(3000), 1000);
        assert_eq!(default_warmup(0), 0);
    }
}
