//! The three-level cache hierarchy.

use baselines::TrueLru;
use sim_core::{
    Access, AccessContext, AccessKind, CacheGeometry, CacheStats, GeometryError, PolicyFactory,
    ReplacementPolicy, SetAssocCache,
};

/// Which level serviced a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the unified L2.
    L2,
    /// Hit in the last-level cache.
    Llc,
    /// Missed everywhere; serviced by DRAM.
    Memory,
}

/// Geometries for the three levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Last-level cache geometry.
    pub llc: CacheGeometry,
}

impl HierarchyConfig {
    /// The paper's configuration: 32 KB/8-way L1D, 256 KB/8-way L2,
    /// 4 MB/16-way L3, 64-byte lines.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1: CacheGeometry::new(32 * 1024, 8, 64).expect("valid L1"),
            l2: CacheGeometry::new(256 * 1024, 8, 64).expect("valid L2"),
            llc: CacheGeometry::new(4 * 1024 * 1024, 16, 64).expect("valid LLC"),
        }
    }

    /// The paper's configuration shrunk by `2^shift` in capacity at every
    /// level (associativity and line size unchanged). Pair with
    /// [`traces::WorkloadSpec::scaled_down`] for fast runs that keep the
    /// same capacity ratios.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the shift makes a level smaller than
    /// one set.
    pub fn paper_scaled(shift: u32) -> Result<Self, GeometryError> {
        Ok(HierarchyConfig {
            l1: CacheGeometry::new((32 * 1024) >> shift, 8, 64)?,
            l2: CacheGeometry::new((256 * 1024) >> shift, 8, 64)?,
            llc: CacheGeometry::new((4 * 1024 * 1024) >> shift, 16, 64)?,
        })
    }
}

/// Inclusion policy of the LLC relative to the private levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Inclusion {
    /// Non-inclusive (default, as in the CMP$im championship model): LLC
    /// evictions leave L1/L2 copies alone.
    #[default]
    NonInclusive,
    /// Inclusive: evicting a block from the LLC back-invalidates any copy
    /// in L1/L2 (the constraint the paper cites when noting that
    /// PDP-with-bypass "necessarily violates inclusion").
    Inclusive,
}

/// A three-level hierarchy: LRU-managed L1 and L2 above an LLC whose
/// replacement policy is the experiment variable.
///
/// Dirty evictions propagate as writebacks to the next level (a writeback
/// hierarchy, non-inclusive by default as in the CMP$im championship
/// infrastructure; see [`Hierarchy::set_inclusion`]). Demand misses are
/// filled at every level they traverse.
///
/// # Example
///
/// ```
/// use mem_model::{Hierarchy, HierarchyConfig};
/// use gippr::PlruPolicy;
/// use sim_core::Access;
///
/// let cfg = HierarchyConfig::paper();
/// let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
/// h.access(&Access::read(0x1234_5678, 0x400));
/// assert_eq!(h.instructions(), 1);
/// ```
pub struct Hierarchy {
    // L1/L2 are always LRU (the paper holds them fixed), so they are
    // monomorphized: their per-access policy callbacks inline instead of
    // going through virtual dispatch. Only the LLC — the experiment
    // variable — stays dynamically dispatched.
    l1: SetAssocCache<TrueLru>,
    l2: SetAssocCache<TrueLru>,
    llc: SetAssocCache,
    instructions: u64,
    prefetcher: Option<crate::prefetch::StridePrefetcher>,
    prefetch_fills: u64,
    inclusion: Inclusion,
    back_invalidations: u64,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("instructions", &self.instructions)
            .field("l1", self.l1.stats())
            .field("l2", self.l2.stats())
            .field("llc", self.llc.stats())
            .finish()
    }
}

impl Hierarchy {
    /// Builds the hierarchy with `llc_policy` at the last level.
    pub fn new(config: HierarchyConfig, llc_policy: Box<dyn ReplacementPolicy>) -> Self {
        Hierarchy {
            l1: SetAssocCache::with_policy(config.l1, TrueLru::new(&config.l1)),
            l2: SetAssocCache::with_policy(config.l2, TrueLru::new(&config.l2)),
            llc: SetAssocCache::new(config.llc, llc_policy),
            instructions: 0,
            prefetcher: None,
            prefetch_fills: 0,
            inclusion: Inclusion::NonInclusive,
            back_invalidations: 0,
        }
    }

    /// Switches the LLC to inclusive mode: LLC evictions back-invalidate
    /// L1/L2 copies, maintaining the inclusion invariant (every block in a
    /// private level is also in the LLC).
    pub fn set_inclusion(&mut self, inclusion: Inclusion) {
        self.inclusion = inclusion;
    }

    /// Back-invalidations performed so far (inclusive mode only).
    pub fn back_invalidations(&self) -> u64 {
        self.back_invalidations
    }

    fn handle_llc_eviction(&mut self, evicted_block: u64) {
        if self.inclusion == Inclusion::Inclusive {
            // The LLC block address space is shared with L1/L2 (same line
            // size), so the block address maps directly.
            if self.l1.invalidate(evicted_block).is_some() {
                self.back_invalidations += 1;
            }
            if self.l2.invalidate(evicted_block).is_some() {
                self.back_invalidations += 1;
            }
        }
    }

    /// Enables a PC-indexed stride prefetcher that observes L1 misses and
    /// fills predicted blocks into L2 (and the LLC beneath it). Prefetch
    /// traffic shares the level statistics with demand traffic, as on real
    /// hardware; [`Hierarchy::prefetch_fills`] counts the fills issued.
    pub fn enable_stride_prefetcher(&mut self, cfg: crate::prefetch::PrefetchConfig) {
        self.prefetcher = Some(crate::prefetch::StridePrefetcher::new(cfg));
    }

    /// Prefetch fills issued into L2 so far (0 when no prefetcher is
    /// enabled).
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Issues one demand access and returns the level that serviced it.
    pub fn access(&mut self, access: &Access) -> ServiceLevel {
        self.instructions += u64::from(access.icount_delta);
        let ctx = access.context();

        let l1_out = self.l1.access(access);
        if let Some(ev) = l1_out.evicted {
            if ev.dirty {
                self.writeback_to_l2(ev.block_addr, access.pc);
            }
        }
        if l1_out.hit {
            return ServiceLevel::L1;
        }

        // Train the prefetcher on L1 misses and issue its predictions.
        if let Some(pf) = &mut self.prefetcher {
            let block = self.l2.geometry().block_of(access.addr);
            let candidates = pf.observe(access.pc, block);
            for candidate in candidates {
                if !self.l2.probe(candidate) {
                    let pf_ctx = AccessContext {
                        pc: access.pc,
                        addr: candidate * 64,
                        is_write: false,
                    };
                    let out = self.l2.access_block(candidate, &pf_ctx);
                    if let Some(ev) = out.evicted {
                        if ev.dirty {
                            self.writeback_to_llc(ev.block_addr, access.pc);
                        }
                    }
                    if !out.hit {
                        let llc_out = self.llc.access_block(candidate, &pf_ctx);
                        if let Some(ev) = llc_out.evicted {
                            self.handle_llc_eviction(ev.block_addr);
                        }
                    }
                    self.prefetch_fills += 1;
                }
            }
        }

        let l2_out = self
            .l2
            .access_block(self.l2.geometry().block_of(access.addr), &ctx);
        if let Some(ev) = l2_out.evicted {
            if ev.dirty {
                self.writeback_to_llc(ev.block_addr, access.pc);
            }
        }
        if l2_out.hit {
            return ServiceLevel::L2;
        }

        let llc_out = self
            .llc
            .access_block(self.llc.geometry().block_of(access.addr), &ctx);
        // LLC dirty evictions drain to memory (counted in stats); in
        // inclusive mode the evicted block is also recalled from L1/L2.
        if let Some(ev) = llc_out.evicted {
            self.handle_llc_eviction(ev.block_addr);
        }
        if llc_out.hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Memory
        }
    }

    fn writeback_to_l2(&mut self, block_addr: u64, pc: u64) {
        let ctx = AccessContext {
            pc,
            addr: block_addr * 64,
            is_write: true,
        };
        let out = self.l2.access_block(block_addr, &ctx);
        if let Some(ev) = out.evicted {
            if ev.dirty {
                self.writeback_to_llc(ev.block_addr, pc);
            }
        }
    }

    fn writeback_to_llc(&mut self, block_addr: u64, pc: u64) {
        let ctx = AccessContext {
            pc,
            addr: block_addr * 64,
            is_write: true,
        };
        let out = self.llc.access_block(block_addr, &ctx);
        if let Some(ev) = out.evicted {
            self.handle_llc_eviction(ev.block_addr);
        }
    }

    /// Runs every access from `iter` through the hierarchy.
    pub fn run<I: IntoIterator<Item = Access>>(&mut self, iter: I) {
        for a in iter {
            self.access(&a);
        }
    }

    /// Total instructions represented by the accesses issued so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// The LLC cache object (for policy inspection).
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// The L1 cache object (for invariant checks and diagnostics).
    pub fn l1(&self) -> &SetAssocCache<TrueLru> {
        &self.l1
    }

    /// The L2 cache object (for invariant checks and diagnostics).
    pub fn l2(&self) -> &SetAssocCache<TrueLru> {
        &self.l2
    }

    /// Resets statistics at every level (cache contents retained) — the
    /// warm-up/measure boundary.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.instructions = 0;
    }
}

/// Runs `iter` through L1/L2 (both LRU) and records the **demand** access
/// stream that reaches the LLC (L2 read/write misses), each record's
/// `icount_delta` rebased to "instructions since the previous LLC access".
///
/// Because L1 and L2 policies are fixed, this stream does not depend on
/// the LLC policy under study, so it is captured once per workload and
/// replayed against every policy (the paper's trace-driven methodology:
/// "traces representing each last-level cache access"). Writeback traffic
/// is deliberately excluded: as in the cache-replacement-championship
/// convention the paper's infrastructure derives from, writebacks must not
/// update replacement recency — letting them promote blocks lets dirty
/// streaming data defeat protective insertion policies.
pub fn capture_llc_stream<I>(config: HierarchyConfig, iter: I) -> (Vec<Access>, u64)
where
    I: IntoIterator<Item = Access>,
{
    capture_llc_stream_config(config, iter, false)
}

/// Like [`capture_llc_stream`] but optionally emitting L2 dirty-eviction
/// writebacks as LLC accesses. Replaying a writeback-inclusive stream lets
/// writebacks *update replacement state* — the off-convention
/// configuration the ablation harness uses to demonstrate why the demand-
/// only convention matters (writeback promotions let dirty streaming data
/// defeat protective insertion; see DESIGN.md §5.0).
pub fn capture_llc_stream_config<I>(
    config: HierarchyConfig,
    iter: I,
    include_writebacks: bool,
) -> (Vec<Access>, u64)
where
    I: IntoIterator<Item = Access>,
{
    struct Recorder {
        stream: Vec<Access>,
        pending_icount: u64,
    }
    let mut rec = Recorder {
        stream: Vec::new(),
        pending_icount: 0,
    };
    // Monomorphized L1/L2: capture runs once per workload but still walks
    // the full reference stream, so inlined LRU callbacks matter.
    let mut l1 = SetAssocCache::with_policy(config.l1, TrueLru::new(&config.l1));
    let mut l2 = SetAssocCache::with_policy(config.l2, TrueLru::new(&config.l2));
    let mut total_instructions = 0u64;

    let emit = |rec: &mut Recorder, addr: u64, pc: u64, kind: AccessKind| {
        rec.stream.push(Access {
            addr,
            pc,
            kind,
            icount_delta: rec.pending_icount.min(u64::from(u32::MAX)) as u32,
        });
        rec.pending_icount = 0;
    };

    for access in iter {
        total_instructions += u64::from(access.icount_delta);
        rec.pending_icount += u64::from(access.icount_delta);
        let ctx = access.context();
        let l1_out = l1.access(&access);
        // L1 dirty evictions go to L2.
        let mut l2_accesses: Vec<(u64, AccessKind)> = Vec::new();
        if let Some(ev) = l1_out.evicted {
            if ev.dirty {
                l2_accesses.push((ev.block_addr, AccessKind::Writeback));
            }
        }
        if !l1_out.hit {
            l2_accesses.push((l1.geometry().block_of(access.addr), access.kind));
        }
        for (block, kind) in l2_accesses {
            let wb_ctx = AccessContext {
                pc: ctx.pc,
                addr: block * 64,
                is_write: kind != AccessKind::Read,
            };
            let out = l2.access_block(block, &wb_ctx);
            // L2 dirty evictions drain to the LLC's data array; by default
            // they are not recorded (writebacks do not update LLC
            // replacement state).
            if let Some(ev) = out.evicted {
                if include_writebacks && ev.dirty {
                    emit(&mut rec, ev.block_addr * 64, ctx.pc, AccessKind::Writeback);
                }
            }
            if !out.hit && kind != AccessKind::Writeback {
                emit(&mut rec, block * 64, ctx.pc, kind);
            }
        }
    }
    (rec.stream, total_instructions)
}

/// Convenience: a [`PolicyFactory`]-driven hierarchy constructor.
pub fn hierarchy_with(config: HierarchyConfig, factory: &PolicyFactory) -> Hierarchy {
    Hierarchy::new(config, factory(&config.llc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gippr::PlruPolicy;

    fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheGeometry::new(1024, 2, 64).unwrap(),
            l2: CacheGeometry::new(4096, 4, 64).unwrap(),
            llc: CacheGeometry::new(16 * 1024, 8, 64).unwrap(),
        }
    }

    fn h() -> Hierarchy {
        let cfg = tiny();
        Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)))
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = h();
        assert_eq!(h.access(&Access::read(0x8000, 0)), ServiceLevel::Memory);
        assert_eq!(h.access(&Access::read(0x8000, 0)), ServiceLevel::L1);
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
        assert_eq!(h.llc_stats().misses, 1);
    }

    #[test]
    fn l1_capacity_eviction_hits_l2() {
        let mut h = h();
        // L1: 8 sets x 2 ways. Blocks mapping to L1 set 0 at stride 512B.
        for i in 0..3u64 {
            h.access(&Access::read(i * 512, 0));
        }
        // Block 0 was evicted from L1 but lives in L2.
        assert_eq!(h.access(&Access::read(0, 0)), ServiceLevel::L2);
    }

    #[test]
    fn instructions_accumulate_from_deltas() {
        let mut h = h();
        h.access(&Access::read(0, 0).with_icount_delta(10));
        h.access(&Access::read(64, 0).with_icount_delta(5));
        assert_eq!(h.instructions(), 15);
    }

    #[test]
    fn dirty_l1_eviction_writes_back() {
        let mut h = h();
        h.access(&Access::write(0, 0));
        // Evict block 0 from L1 (set 0 holds 2 ways).
        h.access(&Access::read(512, 0));
        h.access(&Access::read(1024, 0));
        // The writeback made block 0 dirty in L2; L2 stats saw it.
        assert!(h.l2_stats().accesses >= 3);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = h();
        h.access(&Access::read(0, 0));
        h.reset_stats();
        assert_eq!(h.llc_stats().accesses, 0);
        assert_eq!(h.access(&Access::read(0, 0)), ServiceLevel::L1);
    }

    #[test]
    fn captured_stream_is_policy_independent_input() {
        let cfg = tiny();
        let trace: Vec<Access> = (0..2000u64)
            .map(|i| Access::read(i * 64 % 32768, 0))
            .collect();
        let (stream, instructions) = capture_llc_stream(cfg, trace.iter().copied());
        assert_eq!(instructions, 2000);
        assert!(!stream.is_empty());
        // Sum of rebased deltas never exceeds total instructions.
        let total: u64 = stream.iter().map(|a| u64::from(a.icount_delta)).sum();
        assert!(total <= instructions);
    }

    #[test]
    fn captured_stream_matches_hierarchy_llc_accesses() {
        // Replaying the captured stream into a standalone LLC must produce
        // the same LLC stats as the in-situ hierarchy with the same policy.
        let cfg = tiny();
        let trace: Vec<Access> = (0..5000u64)
            .map(|i| Access::read((i * 7919) % 65536 / 64 * 64, 3))
            .collect();
        let mut live = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
        live.run(trace.iter().copied());

        let (stream, _) = capture_llc_stream(cfg, trace.iter().copied());
        let mut replay = SetAssocCache::new(cfg.llc, Box::new(PlruPolicy::new(&cfg.llc)));
        for a in &stream {
            replay.access(a);
        }
        assert_eq!(replay.stats().accesses, live.llc_stats().accesses);
        assert_eq!(replay.stats().misses, live.llc_stats().misses);
    }

    #[test]
    fn inclusive_mode_maintains_inclusion_invariant() {
        let cfg = tiny();
        let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
        h.set_inclusion(Inclusion::Inclusive);
        // Traffic with more footprint than the LLC, so LLC evictions and
        // back-invalidations actually happen.
        let mut x = 2463534242u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.access(&Access::read((x % (1 << 16)) & !63, 0));
        }
        assert!(
            h.back_invalidations() > 0,
            "eviction pressure reached L1/L2"
        );
        // Invariant: every block resident in L1 or L2 is also in the LLC.
        for set in 0..h.l1().geometry().sets() {
            for blk in h.l1().resident_blocks(set) {
                assert!(
                    h.llc().probe(blk),
                    "L1 block {blk:#x} missing from inclusive LLC"
                );
            }
        }
        for set in 0..h.l2().geometry().sets() {
            for blk in h.l2().resident_blocks(set) {
                assert!(
                    h.llc().probe(blk),
                    "L2 block {blk:#x} missing from inclusive LLC"
                );
            }
        }
    }

    #[test]
    fn non_inclusive_mode_never_back_invalidates() {
        let cfg = tiny();
        let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
        for i in 0..20_000u64 {
            h.access(&Access::read((i * 64) % (1 << 16), 0));
        }
        assert_eq!(h.back_invalidations(), 0);
    }

    #[test]
    fn inclusive_mode_costs_misses() {
        // Back-invalidation recalls hot private-cache blocks, so an
        // inclusive hierarchy can only do worse (or equal) at L1.
        let cfg = tiny();
        let run = |inclusive: bool| {
            let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
            if inclusive {
                h.set_inclusion(Inclusion::Inclusive);
            }
            let mut x = 88172645463325252u64;
            for _ in 0..30_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.access(&Access::read((x % (1 << 16)) & !63, 0));
            }
            h.l1_stats().hits
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn stride_prefetcher_converts_memory_hits_to_l2_hits() {
        let cfg = tiny();
        let run = |prefetch: bool| -> (u64, u64) {
            let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
            if prefetch {
                h.enable_stride_prefetcher(crate::prefetch::PrefetchConfig::default());
            }
            let mut l2_hits = 0u64;
            let mut mem = 0u64;
            // A pure unit-stride stream from one PC.
            for i in 0..4000u64 {
                match h.access(&Access::read(i * 64, 0x400)) {
                    ServiceLevel::L2 => l2_hits += 1,
                    ServiceLevel::Memory => mem += 1,
                    _ => {}
                }
            }
            assert_eq!(h.prefetch_fills() > 0, prefetch);
            (l2_hits, mem)
        };
        let (hits_off, mem_off) = run(false);
        let (hits_on, mem_on) = run(true);
        assert!(
            hits_on > hits_off,
            "prefetching creates L2 hits: {hits_on} vs {hits_off}"
        );
        assert!(
            mem_on < mem_off,
            "and removes memory services: {mem_on} vs {mem_off}"
        );
    }

    #[test]
    fn prefetcher_is_harmless_on_random_traffic() {
        let cfg = tiny();
        let mut h = Hierarchy::new(cfg, Box::new(PlruPolicy::new(&cfg.llc)));
        h.enable_stride_prefetcher(crate::prefetch::PrefetchConfig::default());
        let mut x = 987654321u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.access(&Access::read((x % (1 << 20)) & !63, 0x400));
        }
        assert_eq!(h.prefetch_fills(), 0, "no stable stride, no prefetches");
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = HierarchyConfig::paper();
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc.sets(), 4096);
        let scaled = HierarchyConfig::paper_scaled(3).unwrap();
        assert_eq!(scaled.llc.sets(), 512);
        assert!(HierarchyConfig::paper_scaled(20).is_err());
    }
}
