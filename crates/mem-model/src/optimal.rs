//! Belady's MIN: the offline optimal replacement policy.
//!
//! MIN evicts the block whose next reference lies farthest in the future
//! (Belady, 1966). The paper measures it with an in-house trace-based
//! simulator to bound how much room remains above every online policy
//! (Figure 10: MIN reaches 67.5 % of LRU's misses); it deliberately does
//! *not* report MIN speedups, because "the MIN algorithm is not
//! well-defined in a system that allows out-of-order issue" — we follow
//! suit and expose miss counts only.

use sim_core::{Access, CacheGeometry, CacheStats};
use std::collections::HashMap;

/// Simulates Belady's MIN over a captured LLC access stream, counting
/// misses on the portion after `warmup` accesses.
///
/// Two passes: the first links each access to the stream index of the next
/// reference to the same block; the second simulates each set, evicting
/// the resident block with the farthest next use.
///
/// # Example
///
/// ```
/// use mem_model::min_misses;
/// use sim_core::{Access, CacheGeometry};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::from_sets(1, 2, 64)?;
/// // Three blocks alternating in a 2-way set: MIN keeps the useful two.
/// let stream: Vec<Access> =
///     [0u64, 64, 128, 0, 64, 128].iter().map(|&a| Access::read(a, 0)).collect();
/// let stats = min_misses(&stream, geom, 0);
/// assert_eq!(stats.misses, 4, "optimal misses: 3 cold + 1");
/// # Ok(())
/// # }
/// ```
pub fn min_misses(stream: &[Access], geom: CacheGeometry, warmup: usize) -> CacheStats {
    // Pass 1: next-use chains.
    let mut next_use = vec![usize::MAX; stream.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for (i, a) in stream.iter().enumerate().rev() {
        let block = geom.block_of(a.addr);
        next_use[i] = last_seen.get(&block).copied().unwrap_or(usize::MAX);
        last_seen.insert(block, i);
    }

    // Pass 2: per-set simulation. Each occupant remembers its next use.
    struct Occupant {
        block: u64,
        next: usize,
    }
    let mut sets: Vec<Vec<Occupant>> = (0..geom.sets()).map(|_| Vec::new()).collect();
    let mut stats = CacheStats::new();
    for (i, a) in stream.iter().enumerate() {
        let block = geom.block_of(a.addr);
        let set = &mut sets[geom.set_of_block(block)];
        let measured = i >= warmup;
        if measured {
            stats.accesses += 1;
        }
        if let Some(occ) = set.iter_mut().find(|o| o.block == block) {
            occ.next = next_use[i];
            if measured {
                stats.hits += 1;
            }
            continue;
        }
        if measured {
            stats.misses += 1;
        }
        if set.len() == geom.ways() {
            // Evict the occupant referenced farthest in the future.
            let victim = set
                .iter()
                .enumerate()
                .max_by_key(|(_, o)| o.next)
                .map(|(idx, _)| idx)
                .expect("set is full");
            set.swap_remove(victim);
            if measured {
                stats.evictions += 1;
            }
        }
        set.push(Occupant {
            block,
            next: next_use[i],
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpi::WindowPerfModel;
    use crate::llc::replay_llc;
    use baselines::TrueLru;

    fn reads(blocks: &[u64]) -> Vec<Access> {
        blocks.iter().map(|&b| Access::read(b * 64, 0)).collect()
    }

    #[test]
    fn cold_misses_only_when_everything_fits() {
        let geom = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let stream = reads(&[0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
        let stats = min_misses(&stream, geom, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 8);
    }

    /// Exhaustive optimal miss count for a single `ways`-sized set, by
    /// trying every eviction choice (exponential; tiny inputs only).
    fn brute_force_opt(blocks: &[u64], ways: usize) -> u64 {
        fn go(resident: &mut Vec<u64>, rest: &[u64], ways: usize) -> u64 {
            let Some((&b, tail)) = rest.split_first() else {
                return 0;
            };
            if resident.contains(&b) {
                return go(resident, tail, ways);
            }
            if resident.len() < ways {
                resident.push(b);
                let r = 1 + go(resident, tail, ways);
                resident.pop();
                return r;
            }
            let mut best = u64::MAX;
            for i in 0..resident.len() {
                let old = resident[i];
                resident[i] = b;
                best = best.min(1 + go(resident, tail, ways));
                resident[i] = old;
            }
            best
        }
        go(&mut Vec::new(), blocks, ways)
    }

    #[test]
    fn min_matches_brute_force_optimum() {
        let geom = CacheGeometry::from_sets(1, 2, 64).unwrap();
        // A batch of short adversarial streams over 4 distinct blocks.
        let cases: [&[u64]; 5] = [
            &[0, 1, 2, 0, 1, 3, 0, 2, 1, 3],
            &[0, 1, 2, 3, 0, 1, 2, 3],
            &[0, 0, 0, 1, 1, 2, 0, 2, 1],
            &[3, 2, 1, 0, 1, 2, 3, 2, 1, 0],
            &[0, 1, 0, 2, 0, 3, 0, 1, 2, 3, 0],
        ];
        for blocks in cases {
            let stream = reads(blocks);
            let min = min_misses(&stream, geom, 0);
            let opt = brute_force_opt(blocks, 2);
            assert_eq!(min.misses, opt, "stream {blocks:?}");
        }
    }

    #[test]
    fn min_never_worse_than_lru() {
        let geom = CacheGeometry::from_sets(4, 4, 64).unwrap();
        // Pseudorandom but deterministic block stream.
        let blocks: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 64).collect();
        let stream = reads(&blocks);
        let min = min_misses(&stream, geom, 0);
        let lru = replay_llc(
            &stream,
            geom,
            Box::new(TrueLru::new(&geom)),
            0,
            &WindowPerfModel::default(),
        );
        assert!(min.misses <= lru.stats.misses);
        assert_eq!(min.accesses, lru.stats.accesses);
    }

    #[test]
    fn min_beats_lru_on_thrash_loop() {
        let geom = CacheGeometry::from_sets(1, 4, 64).unwrap();
        // Loop over 6 blocks in a 4-way set: LRU gets zero hits, MIN keeps 3.
        let blocks: Vec<u64> = (0..600).map(|i| i % 6).collect();
        let stream = reads(&blocks);
        let min = min_misses(&stream, geom, 0);
        let lru = replay_llc(
            &stream,
            geom,
            Box::new(TrueLru::new(&geom)),
            0,
            &WindowPerfModel::default(),
        );
        assert_eq!(lru.stats.hits, 0);
        assert!(
            min.hits as f64 / min.accesses as f64 > 0.4,
            "MIN hit ratio {}",
            min.hit_ratio()
        );
    }

    #[test]
    fn warmup_portion_is_excluded() {
        let geom = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let stream = reads(&[0, 1, 2, 3, 0, 1, 2, 3]);
        let stats = min_misses(&stream, geom, 4);
        assert_eq!(stats.accesses, 4);
        assert_eq!(stats.misses, 0, "all four blocks resident after warm-up");
    }

    #[test]
    fn empty_stream() {
        let geom = CacheGeometry::from_sets(2, 2, 64).unwrap();
        let stats = min_misses(&[], geom, 0);
        assert_eq!(stats, CacheStats::new());
    }
}
