//! Single-pass multi-policy replay over a set-sharded stream.
//!
//! [`replay_many`] is the batched counterpart of [`replay_llc`]: one
//! routing pre-pass splits the stream by set index
//! ([`sim_core::ShardedStream`]), then every (policy × shard) pair runs
//! concurrently on the persistent worker pool, and per-shard results
//! merge deterministically into one [`LlcRunResult`] per policy — bit
//! identical to replaying each policy sequentially with [`replay_llc`].
//!
//! Two properties make the merge exact rather than approximate:
//!
//! * **Statistics.** For a [`ShardAffinity::SetLocal`] policy, sharded
//!   replay produces exactly the per-set state transitions of a
//!   sequential replay (stable bucketing preserves per-set order), so
//!   the per-shard counters sum — in fixed ascending shard order — to
//!   the sequential totals.
//! * **Cycles.** The window model clusters misses by *global* stream
//!   order, which sharding destroys. Each shard therefore records a hit
//!   bitmap over its measured entries, and the merge replays those bits
//!   in exact global order (one cursor per shard, driven by
//!   [`ShardedStream::shard_of`]) through the same
//!   [`PerfAccumulator`], reproducing the sequential cycle estimate to
//!   the last bit.
//!
//! Policies with cache-global mutable state ([`ShardAffinity::Global`]
//! — PSEL duels, global RNG, reuse samplers) cannot shard exactly; they
//! take a sequential whole-stream fallback as a single pool task, so the
//! batch API is uniform and always exact. A degenerate single-shard
//! routing (single-core hosts) takes the same fallback for every policy:
//! one shard cannot fan out, so the batch engine never does worse than a
//! sequential replay. See DESIGN.md §10 for the DGIPPR/PSEL semantics
//! decision.

use crate::cpi::{PerfAccumulator, WindowPerfModel};
use crate::llc::{replay_llc, LlcRunResult};
use crate::sliced::replay_llc_sliced;
use sim_core::pool;
use sim_core::shard::ShardRun;
use sim_core::{
    Access, CacheGeometry, PolicyFactory, ReplacementPolicy, ShardAffinity, ShardedStream,
    SliceKernel,
};

/// Replays `stream` under every policy in `factories` with one shared
/// routing pre-pass, returning results in factory order. Semantics
/// (warm-up split, statistics, instructions, cycles) are exactly those of
/// calling [`replay_llc`] once per factory.
///
/// The shard count is chosen from the worker pool's executor budget;
/// pre-route with [`ShardedStream`] and call [`replay_many_sharded`] to
/// reuse one routing across several batches over the same stream.
pub fn replay_many(
    stream: &[Access],
    geom: CacheGeometry,
    factories: &[&PolicyFactory],
    warmup: usize,
    perf: &WindowPerfModel,
) -> Vec<LlcRunResult> {
    replay_many_with_parallelism(stream, geom, factories, warmup, pool::global().cap(), perf)
}

/// [`replay_many`] with an explicit parallelism target instead of the
/// pool budget.
///
/// The routing pre-pass only pays for itself when some roster member can
/// actually shard, so this entry probes every factory's
/// [`ShardAffinity`] *before* routing and skips [`ShardedStream`]
/// construction entirely when nothing would use it: a degenerate target
/// (single-core hosts), a single-set geometry, or an all-
/// [`Global`](ShardAffinity::Global) roster (whose members take an exact
/// whole-stream pass regardless — routing for them is pure overhead).
/// Each policy then replays whole (bit-sliced where it provides a
/// supported [`SliceKernel`], monomorphized otherwise). Results are
/// bit-identical to every other path.
pub fn replay_many_with_parallelism(
    stream: &[Access],
    geom: CacheGeometry,
    factories: &[&PolicyFactory],
    warmup: usize,
    target: usize,
    perf: &WindowPerfModel,
) -> Vec<LlcRunResult> {
    let probes = probe(&geom, factories);
    let can_shard = probes
        .iter()
        .any(|(aff, _)| matches!(aff, ShardAffinity::SetLocal));
    if target.max(1) == 1 || geom.sets() == 1 || !can_shard {
        return pool::global().run(factories.len(), usize::MAX, |i| {
            replay_whole(
                stream,
                geom,
                factories[i],
                probes[i].1.as_ref(),
                warmup,
                perf,
            )
        });
    }
    let sharded = ShardedStream::for_parallelism(stream, &geom, warmup, target);
    replay_many_probed(stream, &sharded, factories, &probes, perf)
}

/// One cheap probe instance per factory: its execution shape and, if the
/// policy has one, its bit-sliced kernel.
fn probe(
    geom: &CacheGeometry,
    factories: &[&PolicyFactory],
) -> Vec<(ShardAffinity, Option<SliceKernel>)> {
    factories
        .iter()
        .map(|f| {
            let p = f(geom);
            (p.shard_affinity(), p.slice_kernel())
        })
        .collect()
}

/// One whole-stream pass for a single policy: the bit-sliced engine when
/// a supported kernel is in hand, the (always exact) dynamic replay
/// otherwise.
fn replay_whole(
    stream: &[Access],
    geom: CacheGeometry,
    factory: &PolicyFactory,
    kernel: Option<&SliceKernel>,
    warmup: usize,
    perf: &WindowPerfModel,
) -> LlcRunResult {
    if let Some(k) = kernel {
        if let Some(result) = replay_llc_sliced(stream, geom, k, warmup, perf) {
            return result;
        }
    }
    replay_llc(stream, geom, factory(&geom), warmup, perf)
}

/// [`replay_many`] over a pre-routed stream. `stream` must be the exact
/// stream `sharded` was built from (the sequential fallback for
/// [`ShardAffinity::Global`] policies replays it whole).
pub fn replay_many_sharded(
    stream: &[Access],
    sharded: &ShardedStream,
    factories: &[&PolicyFactory],
    perf: &WindowPerfModel,
) -> Vec<LlcRunResult> {
    let probes = probe(sharded.geometry(), factories);
    replay_many_probed(stream, sharded, factories, &probes, perf)
}

/// [`replay_many_sharded`] with the per-factory probes already in hand,
/// so entries that probed to decide whether to route at all don't pay
/// for a second round of throwaway policy instances.
fn replay_many_probed(
    stream: &[Access],
    sharded: &ShardedStream,
    factories: &[&PolicyFactory],
    probes: &[(ShardAffinity, Option<SliceKernel>)],
    perf: &WindowPerfModel,
) -> Vec<LlcRunResult> {
    let geom = *sharded.geometry();
    let warmup = sharded.warmup();
    let shards = sharded.shards();

    // Flatten every unit of work — (policy × shard) for set-local
    // policies, one whole-stream pass for global ones — into a single
    // pool batch so the scheduler can interleave them freely.
    enum Unit {
        Shard { policy: usize, shard: usize },
        Whole { policy: usize },
    }
    let mut units = Vec::new();
    for (i, (aff, _)) in probes.iter().enumerate() {
        match aff {
            // A single-shard routing is the sequential replay with extra
            // steps (hit bitmap + merge); degenerate to the whole-stream
            // path so single-core hosts never pay for parallelism they
            // cannot have. Results are identical either way.
            ShardAffinity::SetLocal if shards > 1 => {
                units.extend((0..shards).map(|s| Unit::Shard {
                    policy: i,
                    shard: s,
                }));
            }
            ShardAffinity::SetLocal | ShardAffinity::Global => {
                units.push(Unit::Whole { policy: i })
            }
        }
    }

    enum Out {
        Shard(ShardRun),
        Whole(LlcRunResult),
    }
    let outs = pool::global().run(units.len(), usize::MAX, |u| match units[u] {
        Unit::Shard { policy, shard } => {
            Out::Shard(sharded.replay_shard(shard, factories[policy](&geom)))
        }
        Unit::Whole { policy } => Out::Whole(replay_whole(
            stream,
            geom,
            factories[policy],
            probes[policy].1.as_ref(),
            warmup,
            perf,
        )),
    });

    // Reassemble in factory order; `pool.run` returns results in unit
    // order, and units were emitted in factory order, so this is a single
    // forward scan. Per-policy merges are independent — run them as a
    // second (deterministic) pool batch.
    let mut shard_runs: Vec<Vec<ShardRun>> = factories.iter().map(|_| Vec::new()).collect();
    let mut whole: Vec<Option<LlcRunResult>> = factories.iter().map(|_| None).collect();
    for (unit, out) in units.iter().zip(outs) {
        match (unit, out) {
            (Unit::Shard { policy, .. }, Out::Shard(run)) => shard_runs[*policy].push(run),
            (Unit::Whole { policy }, Out::Whole(result)) => whole[*policy] = Some(result),
            _ => unreachable!("unit and outcome kinds always correspond"),
        }
    }
    pool::global().run(factories.len(), usize::MAX, |i| match &whole[i] {
        Some(result) => result.clone(),
        None => merge_shard_runs(sharded, &shard_runs[i], perf),
    })
}

/// Sharded replay of a single monomorphized policy: replays every shard
/// (sequentially — callers parallelize across policies or workloads) on a
/// fresh instance from `make` and merges. Exactly equivalent to
/// [`crate::replay_llc_mono`] for [`ShardAffinity::SetLocal`] policies.
pub fn replay_llc_sharded<P, F>(
    sharded: &ShardedStream,
    make: F,
    perf: &WindowPerfModel,
) -> LlcRunResult
where
    P: ReplacementPolicy,
    F: Fn() -> P,
{
    if sharded.shards() == 1 {
        // Degenerate routing: the single bucket is the stream in global
        // order, so hits feed the cycle model directly — no hit bitmap,
        // no merge-cursor second pass. This removes the measured 0.87×
        // single-core regression of the bitmap-and-merge path.
        let mut acc = PerfAccumulator::new();
        let icount = sharded.icount();
        let mut k = 0usize;
        let stats = sharded.replay_shard_with(0, make(), |hit| {
            acc.note_llc(icount[k], hit, perf);
            k += 1;
        });
        return LlcRunResult {
            stats,
            instructions: acc.instructions(),
            cycles: acc.cycles(perf),
        };
    }
    let runs: Vec<ShardRun> = (0..sharded.shards())
        .map(|s| sharded.replay_shard(s, make()))
        .collect();
    merge_shard_runs(sharded, &runs, perf)
}

/// Merges one policy's per-shard runs: counters sum in ascending shard
/// order, and the cycle model replays the hit bitmaps in exact global
/// stream order via one cursor per shard.
fn merge_shard_runs(
    sharded: &ShardedStream,
    runs: &[ShardRun],
    perf: &WindowPerfModel,
) -> LlcRunResult {
    let stats = ShardedStream::merge_stats(runs);
    let mut acc = PerfAccumulator::new();
    let mut cursors = vec![0usize; runs.len()];
    let icount = sharded.icount();
    for (k, &s) in sharded.shard_of().iter().enumerate() {
        let s = s as usize;
        let hit = ShardedStream::hit_at(&runs[s], cursors[s]);
        cursors[s] += 1;
        acc.note_llc(icount[k], hit, perf);
    }
    LlcRunResult {
        stats,
        instructions: acc.instructions(),
        cycles: acc.cycles(perf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llc::replay_llc_mono;
    use baselines::{DrripPolicy, TrueLru};
    use gippr::GipprPolicy;
    use sim_core::policy::factory;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(64, 16, 64).unwrap()
    }

    fn mixed_stream(n: usize) -> Vec<Access> {
        let mut state = 0x2545f4914f6cdd1du64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = if i % 4 == 0 {
                    (state % 256) * 64
                } else {
                    (state % 16384) * 64
                };
                let a = if state & 3 == 0 {
                    Access::write(addr, state % 512)
                } else {
                    Access::read(addr, state % 512)
                };
                a.with_icount_delta((state % 9) as u32 + 1)
            })
            .collect()
    }

    #[test]
    fn replay_many_matches_sequential_exactly() {
        let g = geom();
        let stream = mixed_stream(30_000);
        let warmup = 10_000;
        let perf = WindowPerfModel::default();

        let lru = factory(|g| Box::new(TrueLru::new(g)));
        let gippr = factory(|g| Box::new(GipprPolicy::new(g, gippr::vectors::wi_gippr()).unwrap()));
        let drrip = factory(|g| Box::new(DrripPolicy::new(g).unwrap()));
        let roster = [&lru, &gippr, &drrip];

        // The convenience entry (host-budget shard count) …
        let batched = replay_many(&stream, g, &roster, warmup, &perf);
        for (f, b) in roster.iter().zip(&batched) {
            let seq = replay_llc(&stream, g, f(&g), warmup, &perf);
            assert_eq!(*b, seq, "batched result diverged for {}", f(&g).name());
        }
        // … and pinned multi-shard routings, so the shard-and-merge path
        // is exercised even when the host budget degenerates to 1 shard.
        for shards in [2usize, 8, 64] {
            let sharded = ShardedStream::build(&stream, &g, warmup, shards);
            let batched = replay_many_sharded(&stream, &sharded, &roster, &perf);
            for (f, b) in roster.iter().zip(&batched) {
                let seq = replay_llc(&stream, g, f(&g), warmup, &perf);
                assert_eq!(*b, seq, "shards={shards} diverged for {}", f(&g).name());
            }
        }
    }

    #[test]
    fn sharded_mono_matches_replay_llc_mono() {
        let g = geom();
        let stream = mixed_stream(20_000);
        let warmup = 5_000;
        let perf = WindowPerfModel::default();
        for shards in [1usize, 4, 64] {
            let sharded = ShardedStream::build(&stream, &g, warmup, shards);
            let got = replay_llc_sharded(&sharded, || TrueLru::new(&g), &perf);
            let want = replay_llc_mono(&stream, g, TrueLru::new(&g), warmup, &perf);
            assert_eq!(got, want, "shards={shards}");
        }
    }

    #[test]
    fn replay_many_is_deterministic_run_to_run() {
        let g = geom();
        let stream = mixed_stream(10_000);
        let perf = WindowPerfModel::default();
        let lru = factory(|g| Box::new(TrueLru::new(g)));
        let drrip = factory(|g| Box::new(DrripPolicy::new(g).unwrap()));
        let roster = [&lru, &drrip];
        let a = replay_many(&stream, g, &roster, 2_000, &perf);
        let b = replay_many(&stream, g, &roster, 2_000, &perf);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_roster_and_empty_stream() {
        let g = geom();
        let perf = WindowPerfModel::default();
        assert!(replay_many(&[], g, &[], 0, &perf).is_empty());
        let lru = factory(|g| Box::new(TrueLru::new(g)));
        let r = replay_many(&[], g, &[&lru], 0, &perf);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].stats.accesses, 0);
    }
}
