//! Reuse/stack-distance analysis of access streams.
//!
//! The paper's motivation (Section 2.2) and PDP's protecting-distance
//! computation both rest on the *reuse-distance distribution* of a
//! workload. This module computes exact LRU stack distances (number of
//! distinct blocks touched between consecutive uses of the same block)
//! with the classic Bennett–Kruskal algorithm: a Fenwick (binary indexed)
//! tree marks each block's most recent position, and a prefix sum counts
//! the distinct blocks since the previous use. Stack distances directly
//! give LRU hit counts at every associativity at once, which makes this a
//! powerful diagnostic for the synthetic workload models.

use sim_core::{Access, CacheGeometry};
use std::collections::HashMap;

/// A Fenwick tree over stream positions (internal, but kept visible for
/// reuse by tests and tools).
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// A zeroed tree covering positions `0..n`.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at `pos`.
    pub fn add(&mut self, pos: usize, delta: i32) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `0..=pos`.
    pub fn prefix_sum(&self, pos: usize) -> u64 {
        let mut i = pos + 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over `lo..=hi` (empty ranges yield 0).
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        if lo > hi {
            return 0;
        }
        let below = if lo == 0 { 0 } else { self.prefix_sum(lo - 1) };
        self.prefix_sum(hi) - below
    }
}

/// A stack-distance histogram: `finite[d]` counts reuses at stack distance
/// `d` (0 = re-touch with nothing in between); `cold` counts first
/// touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDistances {
    /// Histogram of finite distances (index = distance, capped at the
    /// configured maximum; the last bucket absorbs the tail).
    pub finite: Vec<u64>,
    /// First-touch (compulsory) accesses.
    pub cold: u64,
}

impl StackDistances {
    /// Total accesses analysed.
    pub fn total(&self) -> u64 {
        self.cold + self.finite.iter().sum::<u64>()
    }

    /// Hits a fully-associative LRU cache of `capacity` blocks would score
    /// on this stream: exactly the reuses at stack distance < capacity.
    pub fn lru_hits_at(&self, capacity: usize) -> u64 {
        self.finite.iter().take(capacity).sum()
    }

    /// LRU miss ratio at `capacity` blocks (fully associative).
    pub fn lru_miss_ratio_at(&self, capacity: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            1.0 - self.lru_hits_at(capacity) as f64 / total as f64
        }
    }
}

/// Computes exact stack distances of the block stream underlying
/// `accesses` (line granularity of `geom`), capping the histogram at
/// `max_distance` (tail reuses land in the last bucket).
///
/// # Example
///
/// ```
/// use mem_model::analysis::stack_distances;
/// use sim_core::{Access, CacheGeometry};
///
/// # fn main() -> Result<(), sim_core::GeometryError> {
/// let geom = CacheGeometry::from_sets(1, 4, 64)?;
/// // A loop over 3 blocks: after the cold pass, every reuse is at
/// // distance 2.
/// let stream: Vec<Access> =
///     (0..30u64).map(|i| Access::read((i % 3) * 64, 0)).collect();
/// let sd = stack_distances(&stream, geom, 64);
/// assert_eq!(sd.cold, 3);
/// assert_eq!(sd.finite[2], 27);
/// # Ok(())
/// # }
/// ```
pub fn stack_distances(
    accesses: &[Access],
    geom: CacheGeometry,
    max_distance: usize,
) -> StackDistances {
    let n = accesses.len();
    let mut fenwick = Fenwick::new(n);
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    let mut finite = vec![0u64; max_distance.max(1)];
    let mut cold = 0u64;
    for (i, a) in accesses.iter().enumerate() {
        let block = geom.block_of(a.addr);
        match last_pos.insert(block, i) {
            None => cold += 1,
            Some(prev) => {
                // Distinct blocks touched strictly between prev and i.
                let distance = fenwick.range_sum(prev + 1, i.saturating_sub(1).max(prev + 1))
                    as usize
                    // range_sum(prev+1, prev+1) when i == prev+1 counts a
                    // position that holds no marker yet, so it is 0 — but
                    // guard the degenerate immediate-reuse case anyway.
                    ;
                let d = if i == prev + 1 { 0 } else { distance };
                let bucket = d.min(finite.len() - 1);
                finite[bucket] += 1;
                // The block's marker moves from prev to i.
                fenwick.add(prev, -1);
            }
        }
        fenwick.add(i, 1);
    }
    StackDistances { finite, cold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sets(1, 4, 64).unwrap()
    }

    fn reads(blocks: &[u64]) -> Vec<Access> {
        blocks.iter().map(|&b| Access::read(b * 64, 0)).collect()
    }

    #[test]
    fn fenwick_prefix_and_range_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 1);
        f.add(4, 2);
        f.add(9, 3);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(4), 3);
        assert_eq!(f.prefix_sum(9), 6);
        assert_eq!(f.range_sum(1, 4), 2);
        assert_eq!(f.range_sum(5, 8), 0);
        assert_eq!(f.range_sum(5, 3), 0, "inverted range is empty");
        f.add(4, -2);
        assert_eq!(f.prefix_sum(9), 4);
    }

    #[test]
    fn immediate_reuse_is_distance_zero() {
        let sd = stack_distances(&reads(&[7, 7, 7]), geom(), 16);
        assert_eq!(sd.cold, 1);
        assert_eq!(sd.finite[0], 2);
    }

    #[test]
    fn textbook_stack_distance_example() {
        // Stream a b c b a: b reused at distance 1 (c between), a at
        // distance 2 (c and b between).
        let sd = stack_distances(&reads(&[0, 1, 2, 1, 0]), geom(), 16);
        assert_eq!(sd.cold, 3);
        assert_eq!(sd.finite[1], 1);
        assert_eq!(sd.finite[2], 1);
    }

    #[test]
    fn loop_gives_uniform_distance() {
        // Loop over 5 blocks: every non-cold access at distance 4.
        let blocks: Vec<u64> = (0..50).map(|i| i % 5).collect();
        let sd = stack_distances(&reads(&blocks), geom(), 16);
        assert_eq!(sd.cold, 5);
        assert_eq!(sd.finite[4], 45);
    }

    #[test]
    fn stream_is_all_cold() {
        let blocks: Vec<u64> = (0..100).collect();
        let sd = stack_distances(&reads(&blocks), geom(), 16);
        assert_eq!(sd.cold, 100);
        assert_eq!(sd.total(), 100);
        assert_eq!(sd.lru_hits_at(1000), 0);
    }

    #[test]
    fn tail_absorbs_long_distances() {
        // Loop over 40 blocks with a 8-bucket histogram: reuses land in
        // the last bucket.
        let blocks: Vec<u64> = (0..120).map(|i| i % 40).collect();
        let sd = stack_distances(&reads(&blocks), geom(), 8);
        assert_eq!(sd.finite[7], 80);
    }

    #[test]
    fn lru_hits_match_direct_simulation() {
        // Fully-associative LRU at capacity C hits exactly the reuses at
        // distance < C: cross-check against a list-based LRU model.
        let blocks: Vec<u64> = (0..2000u64).map(|i| (i * 2654435761) % 37).collect();
        let stream = reads(&blocks);
        let sd = stack_distances(&stream, geom(), 64);
        for capacity in [1usize, 4, 8, 16, 37] {
            let mut lru: Vec<u64> = Vec::new();
            let mut hits = 0u64;
            for &b in &blocks {
                if let Some(pos) = lru.iter().position(|&x| x == b) {
                    hits += 1;
                    lru.remove(pos);
                } else if lru.len() == capacity {
                    lru.remove(0);
                }
                lru.push(b);
            }
            assert_eq!(sd.lru_hits_at(capacity), hits, "capacity {capacity}");
        }
    }

    #[test]
    fn miss_ratio_monotone_in_capacity() {
        let blocks: Vec<u64> = (0..3000u64).map(|i| (i * 48271) % 200).collect();
        let sd = stack_distances(&reads(&blocks), geom(), 256);
        let mut prev = 1.0f64;
        for cap in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let mr = sd.lru_miss_ratio_at(cap);
            assert!(mr <= prev + 1e-12, "monotone at {cap}");
            prev = mr;
        }
    }

    #[test]
    fn workload_models_have_expected_distance_profiles() {
        use traces::spec2006::Spec2006;
        let g = CacheGeometry::from_sets(1, 4, 64).unwrap();
        // Libquantum: pure streaming = overwhelmingly cold at short range.
        let lq: Vec<Access> = Spec2006::Libquantum
            .workload()
            .scaled_down(6)
            .generator(0)
            .take(5000)
            .collect();
        let sd = stack_distances(&lq, g, 4096);
        assert!(
            sd.cold as f64 / sd.total() as f64 > 0.5,
            "streaming is cold-dominated"
        );
        // Gamess: small loop = short distances dominate.
        let gm: Vec<Access> = Spec2006::Gamess
            .workload()
            .scaled_down(6)
            .generator(0)
            .take(5000)
            .collect();
        let sd = stack_distances(&gm, g, 4096);
        assert!(
            sd.lru_hits_at(128) as f64 / sd.total() as f64 > 0.8,
            "cache-resident model reuses within a tiny footprint"
        );
    }
}
