//! Bit-sliced LLC replay: the third engine beside the monomorphized
//! ([`crate::replay_llc_mono`]) and sharded ([`crate::replay_llc_sharded`])
//! replayers.
//!
//! For policies that describe themselves as a
//! [`SliceKernel`](sim_core::SliceKernel) (the set-local
//! LRU/PLRU/GIPPR/GIPLR/RRIP-IPV families), `sim_core::slice` packs the
//! replacement state into `u64` words — four PLRU trees per word, SWAR
//! nibble vectors for stacks and RRPVs — and advances it with plain ALU
//! ops while the tag path runs through the same wide scan as
//! `SetAssocCache`. Final statistics and cycle estimates are bit-identical
//! to the monomorphized replay (enforced by `sim-verify`); when the kernel
//! declines the geometry the caller falls back to mono, which is always
//! exact.

use crate::cpi::{PerfAccumulator, WindowPerfModel};
use crate::llc::LlcRunResult;
use sim_core::{slice, Access, CacheGeometry, SliceKernel};

/// Replays `stream` through the bit-sliced kernel engine with the exact
/// semantics of [`crate::replay_llc_mono`] — same warm-up split, same
/// statistics protocol, same global-order cycle accounting.
///
/// Returns `None` when `kernel` does not support `geom` (associativity
/// outside the packed range, malformed vector); callers must then fall
/// back to the monomorphized engine.
pub fn replay_llc_sliced(
    stream: &[Access],
    geom: CacheGeometry,
    kernel: &SliceKernel,
    warmup: usize,
    perf: &WindowPerfModel,
) -> Option<LlcRunResult> {
    let mut acc = PerfAccumulator::new();
    let stats = slice::replay_sliced(stream, &geom, kernel, warmup, |icount, hit| {
        acc.note_llc(icount, hit, perf)
    })?;
    Some(LlcRunResult {
        stats,
        instructions: acc.instructions(),
        cycles: acc.cycles(perf),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llc::replay_llc_mono;
    use baselines::{RripIpvPolicy, SrripPolicy, TrueLru};
    use gippr::{GiplrPolicy, GipprPolicy, PlruPolicy};
    use sim_core::{Access, ReplacementPolicy};

    fn mixed_stream(n: usize) -> Vec<Access> {
        let mut state = 0x2545f4914f6cdd1du64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = if i % 4 == 0 {
                    (state % 256) * 64
                } else {
                    (state % 16384) * 64
                };
                let a = if state & 3 == 0 {
                    Access::write(addr, state % 512)
                } else {
                    Access::read(addr, state % 512)
                };
                a.with_icount_delta((state % 9) as u32 + 1)
            })
            .collect()
    }

    #[test]
    fn sliced_matches_mono_for_every_kernel_policy() {
        let g = CacheGeometry::from_sets(64, 16, 64).unwrap();
        let stream = mixed_stream(25_000);
        let warmup = 8_000;
        let perf = WindowPerfModel::default();

        let roster: Vec<Box<dyn ReplacementPolicy>> = vec![
            Box::new(TrueLru::new(&g)),
            Box::new(PlruPolicy::new(&g)),
            Box::new(GipprPolicy::new(&g, gippr::vectors::wi_gippr()).unwrap()),
            Box::new(GiplrPolicy::new(&g, gippr::Ipv::lru_insertion(16)).unwrap()),
            Box::new(SrripPolicy::new(&g)),
            Box::new(RripIpvPolicy::new(&g, [0, 1, 1, 2, 3]).unwrap()),
        ];
        for policy in roster {
            let kernel = policy.slice_kernel().expect("roster policy has a kernel");
            let name = policy.name().to_string();
            let sliced = replay_llc_sliced(&stream, g, &kernel, warmup, &perf)
                .expect("kernel supports 16-way");
            let mono = replay_llc_mono(&stream, g, policy, warmup, &perf);
            assert_eq!(sliced, mono, "sliced diverged from mono for {name}");
        }
    }

    #[test]
    fn unsupported_ways_yields_none() {
        let g = CacheGeometry::from_sets(4, 32, 64).unwrap();
        let kernel = SliceKernel::PlruIpv { ipv: vec![0; 33] };
        let perf = WindowPerfModel::default();
        assert!(replay_llc_sliced(&[], g, &kernel, 0, &perf).is_none());
    }
}
