//! A PC-indexed stride prefetcher.
//!
//! The comparison paper's related work (Ebrahimi et al.) tunes prefetchers
//! with genetic algorithms, and real LLC replacement always coexists with
//! prefetching; this module provides the standard reference-prediction
//! substrate so experiments can study replacement under prefetched
//! traffic. Prefetches are issued on L1 misses and fill into L2 (and the
//! LLC below it) without counting as demand accesses.

use std::collections::HashMap;

/// Configuration for [`StridePrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Reference-prediction-table entries (PC-indexed).
    pub table_entries: usize,
    /// Consecutive same-stride observations required before issuing.
    pub confidence_threshold: u8,
    /// Blocks ahead to prefetch once confident.
    pub degree: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            table_entries: 256,
            confidence_threshold: 2,
            degree: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RptEntry {
    pc: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
}

/// A classic reference-prediction-table stride prefetcher.
///
/// # Example
///
/// ```
/// use mem_model::prefetch::StridePrefetcher;
///
/// let mut pf = StridePrefetcher::default();
/// // A unit-stride stream trains after two consecutive equal strides.
/// assert!(pf.observe(0x400, 0).is_empty()); // first touch
/// assert!(pf.observe(0x400, 1).is_empty()); // first stride observed
/// assert_eq!(pf.observe(0x400, 2), vec![3, 4]); // stride confirmed
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: PrefetchConfig,
    table: HashMap<usize, RptEntry>,
    issued: u64,
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(PrefetchConfig::default())
    }
}

impl StridePrefetcher {
    /// Creates a prefetcher with `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the table size or degree is zero.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(
            cfg.table_entries > 0 && cfg.degree > 0,
            "table and degree must be nonzero"
        );
        StridePrefetcher {
            cfg,
            table: HashMap::new(),
            issued: 0,
        }
    }

    /// Observes a demand access (`pc`, block address) and returns the
    /// block addresses to prefetch (empty until the stride is confident).
    pub fn observe(&mut self, pc: u64, block: u64) -> Vec<u64> {
        let slot = (pc as usize >> 2) % self.cfg.table_entries;
        let entry = self.table.entry(slot).or_insert(RptEntry {
            pc,
            last_block: block,
            stride: 0,
            confidence: 0,
        });
        if entry.pc != pc {
            // Slot conflict: retrain for the new PC.
            *entry = RptEntry {
                pc,
                last_block: block,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let observed = block as i64 - entry.last_block as i64;
        entry.last_block = block;
        if observed == 0 {
            return Vec::new();
        }
        if observed == entry.stride {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = observed;
            entry.confidence = 1;
            return Vec::new();
        }
        if entry.confidence < self.cfg.confidence_threshold {
            return Vec::new();
        }
        let stride = entry.stride;
        let out: Vec<u64> = (1..=self.cfg.degree as i64)
            .filter_map(|d| {
                let b = block as i64 + stride * d;
                (b >= 0).then_some(b as u64)
            })
            .collect();
        self.issued += out.len() as u64;
        out
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride() {
        let mut pf = StridePrefetcher::default();
        assert!(pf.observe(0x10, 0).is_empty());
        assert!(pf.observe(0x10, 1).is_empty());
        assert_eq!(pf.observe(0x10, 2), vec![3, 4]);
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn detects_negative_stride() {
        let mut pf = StridePrefetcher::default();
        assert!(pf.observe(0x10, 100).is_empty());
        assert!(pf.observe(0x10, 97).is_empty());
        assert_eq!(pf.observe(0x10, 94), vec![91, 88]);
    }

    #[test]
    fn random_pattern_never_fires() {
        let mut pf = StridePrefetcher::default();
        let blocks = [5u64, 99, 3, 1000, 42, 7, 512, 9];
        for b in blocks {
            assert!(pf.observe(0x10, b).is_empty(), "no stable stride");
        }
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::default();
        for b in 0..4u64 {
            let _ = pf.observe(0x10, b); // stride 1, confident
        }
        assert!(!pf.observe(0x10, 4).is_empty());
        // Jump: stride becomes 100, confidence resets to 1 (below the
        // threshold), then re-fires once the new stride repeats.
        assert!(pf.observe(0x10, 104).is_empty());
        assert_eq!(pf.observe(0x10, 204), vec![304, 404]);
    }

    #[test]
    fn distinct_pcs_track_independent_strides() {
        let mut pf = StridePrefetcher::new(PrefetchConfig {
            table_entries: 256,
            ..Default::default()
        });
        for i in 0..5u64 {
            let _ = pf.observe(0x10, i); // stride 1
            let _ = pf.observe(0x20, i * 8); // stride 8
        }
        assert_eq!(pf.observe(0x10, 5), vec![6, 7]);
        assert_eq!(pf.observe(0x20, 40), vec![48, 56]);
    }

    #[test]
    fn repeated_same_block_is_ignored() {
        let mut pf = StridePrefetcher::default();
        for _ in 0..10 {
            assert!(pf.observe(0x10, 7).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_degree() {
        let _ = StridePrefetcher::new(PrefetchConfig {
            degree: 0,
            ..Default::default()
        });
    }
}
