//! Multi-core shared-LLC simulation: the paper's future-work item 4
//! ("we are actively researching extending it to multi-core"), modelled as
//! a multiprogrammed mix — per-core private L1/L2 above one shared LLC,
//! with core-tagged physical addresses (separate address spaces, no
//! sharing), the standard methodology for replacement studies.

use crate::hierarchy::{HierarchyConfig, ServiceLevel};
use baselines::TrueLru;
use sim_core::{Access, CacheStats, ReplacementPolicy, SetAssocCache};

/// Bits reserved at the top of the address for the core id.
const CORE_SHIFT: u32 = 56;

struct PrivateCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
}

/// N cores with private L1/L2 sharing one LLC.
///
/// # Example
///
/// ```
/// use mem_model::multicore::MulticoreHierarchy;
/// use mem_model::HierarchyConfig;
/// use gippr::PlruPolicy;
/// use sim_core::Access;
///
/// let cfg = HierarchyConfig::paper_scaled(5).unwrap();
/// let mut mc = MulticoreHierarchy::new(2, cfg, Box::new(PlruPolicy::new(&cfg.llc)));
/// mc.access(0, &Access::read(0x1000, 0));
/// mc.access(1, &Access::read(0x1000, 0)); // same VA, different core: distinct block
/// assert_eq!(mc.llc_stats(1).misses, 1, "no constructive sharing across cores");
/// ```
pub struct MulticoreHierarchy {
    cores: Vec<PrivateCaches>,
    llc: SetAssocCache,
    llc_by_core: Vec<CacheStats>,
    instructions: Vec<u64>,
}

impl std::fmt::Debug for MulticoreHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulticoreHierarchy")
            .field("cores", &self.cores.len())
            .field("llc", self.llc.stats())
            .finish()
    }
}

impl MulticoreHierarchy {
    /// Builds an `n_cores`-core system; each core gets private L1/L2 of
    /// `config`'s geometry, all sharing `config.llc` under `llc_policy`.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or greater than 255.
    pub fn new(
        n_cores: usize,
        config: HierarchyConfig,
        llc_policy: Box<dyn ReplacementPolicy>,
    ) -> Self {
        assert!(
            (1..=255).contains(&n_cores),
            "1..=255 cores supported, got {n_cores}"
        );
        MulticoreHierarchy {
            cores: (0..n_cores)
                .map(|_| PrivateCaches {
                    l1: SetAssocCache::new(config.l1, Box::new(TrueLru::new(&config.l1))),
                    l2: SetAssocCache::new(config.l2, Box::new(TrueLru::new(&config.l2))),
                })
                .collect(),
            llc: SetAssocCache::new(config.llc, llc_policy),
            llc_by_core: vec![CacheStats::new(); n_cores],
            instructions: vec![0; n_cores],
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Issues `access` from `core`. Addresses are namespaced per core (a
    /// multiprogrammed mix — no inter-core sharing).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, access: &Access) -> ServiceLevel {
        let tagged = Access {
            addr: access.addr | ((core as u64 + 1) << CORE_SHIFT),
            ..*access
        };
        self.instructions[core] += u64::from(access.icount_delta);
        let ctx = tagged.context();
        let pc = &mut self.cores[core];

        let l1_out = pc.l1.access(&tagged);
        // Private-cache writebacks drain to L2 only; per the workspace
        // convention, writebacks never update LLC replacement state.
        if let Some(ev) = l1_out.evicted {
            if ev.dirty {
                let wb_ctx = sim_core::AccessContext {
                    pc: ctx.pc,
                    addr: ev.block_addr * 64,
                    is_write: true,
                };
                let _ = pc.l2.access_block(ev.block_addr, &wb_ctx);
            }
        }
        if l1_out.hit {
            return ServiceLevel::L1;
        }
        let l2_out = pc
            .l2
            .access_block(pc.l2.geometry().block_of(tagged.addr), &ctx);
        if l2_out.hit {
            return ServiceLevel::L2;
        }
        // Shared LLC access, attributed to the issuing core.
        let before = *self.llc.stats();
        let out = self
            .llc
            .access_block(self.llc.geometry().block_of(tagged.addr), &ctx);
        let after = *self.llc.stats();
        let delta = CacheStats {
            accesses: after.accesses - before.accesses,
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            writebacks: after.writebacks - before.writebacks,
            bypasses: after.bypasses - before.bypasses,
        };
        self.llc_by_core[core] += delta;
        if out.hit {
            ServiceLevel::Llc
        } else {
            ServiceLevel::Memory
        }
    }

    /// Runs `per_core` accesses from each stream, interleaved round-robin
    /// (one access per core per turn), modelling co-scheduled execution.
    pub fn run_interleaved<I>(&mut self, mut streams: Vec<I>, per_core: usize)
    where
        I: Iterator<Item = Access>,
    {
        assert_eq!(streams.len(), self.n_cores(), "one stream per core");
        for _ in 0..per_core {
            for (core, stream) in streams.iter_mut().enumerate() {
                if let Some(a) = stream.next() {
                    self.access(core, &a);
                }
            }
        }
    }

    /// Shared-LLC statistics attributed to `core`.
    pub fn llc_stats(&self, core: usize) -> &CacheStats {
        &self.llc_by_core[core]
    }

    /// Total shared-LLC statistics.
    pub fn llc_total(&self) -> &CacheStats {
        self.llc.stats()
    }

    /// Instructions retired by `core`.
    pub fn instructions(&self, core: usize) -> u64 {
        self.instructions[core]
    }
}

/// Weighted speedup of a shared run against per-core baselines:
/// `Σ_i (baseline_cycles_i / cycles_i) / n` — the arithmetic mean of
/// per-core speedups, the customary multiprogrammed metric.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn weighted_speedup(baseline_cycles: &[f64], cycles: &[f64]) -> f64 {
    assert_eq!(baseline_cycles.len(), cycles.len());
    assert!(!cycles.is_empty());
    baseline_cycles
        .iter()
        .zip(cycles)
        .map(|(b, c)| if *c > 0.0 { b / c } else { 1.0 })
        .sum::<f64>()
        / cycles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gippr::PlruPolicy;
    use traces::spec2006::Spec2006;

    fn cfg() -> HierarchyConfig {
        HierarchyConfig::paper_scaled(6).unwrap()
    }

    fn mc(n: usize) -> MulticoreHierarchy {
        let c = cfg();
        MulticoreHierarchy::new(n, c, Box::new(PlruPolicy::new(&c.llc)))
    }

    #[test]
    fn cores_have_distinct_address_spaces() {
        let mut m = mc(2);
        m.access(0, &Access::read(0x1000, 0));
        m.access(1, &Access::read(0x1000, 0));
        assert_eq!(m.llc_total().misses, 2, "same VA on two cores = two blocks");
    }

    #[test]
    fn per_core_attribution_sums_to_total() {
        let mut m = mc(2);
        let a: Vec<Access> = Spec2006::Mcf
            .workload()
            .scaled_down(6)
            .generator(0)
            .take(3000)
            .collect();
        let b: Vec<Access> = Spec2006::Libquantum
            .workload()
            .scaled_down(6)
            .generator(1)
            .take(3000)
            .collect();
        m.run_interleaved(vec![a.into_iter(), b.into_iter()], 3000);
        let total = m.llc_total();
        let sum_misses = m.llc_stats(0).misses + m.llc_stats(1).misses;
        assert_eq!(sum_misses, total.misses);
        assert_eq!(
            m.llc_stats(0).accesses + m.llc_stats(1).accesses,
            total.accesses
        );
    }

    #[test]
    fn contention_increases_misses_over_solo_run() {
        // A workload sharing the LLC with a streaming aggressor must miss
        // at least as much as when it runs alone.
        let solo_misses = {
            let c = cfg();
            let mut m = MulticoreHierarchy::new(1, c, Box::new(PlruPolicy::new(&c.llc)));
            let s: Vec<Access> = Spec2006::DealII
                .workload()
                .scaled_down(6)
                .generator(0)
                .take(8000)
                .collect();
            m.run_interleaved(vec![s.into_iter()], 8000);
            m.llc_stats(0).misses
        };
        let shared_misses = {
            let mut m = mc(2);
            let s: Vec<Access> = Spec2006::DealII
                .workload()
                .scaled_down(6)
                .generator(0)
                .take(8000)
                .collect();
            let aggressor: Vec<Access> = Spec2006::Libquantum
                .workload()
                .scaled_down(6)
                .generator(0)
                .take(8000)
                .collect();
            m.run_interleaved(vec![s.into_iter(), aggressor.into_iter()], 8000);
            m.llc_stats(0).misses
        };
        assert!(
            shared_misses >= solo_misses,
            "contention can only hurt: shared {shared_misses} vs solo {solo_misses}"
        );
    }

    #[test]
    fn instructions_tracked_per_core() {
        let mut m = mc(2);
        m.access(0, &Access::read(0, 0).with_icount_delta(10));
        m.access(1, &Access::read(0, 0).with_icount_delta(3));
        assert_eq!(m.instructions(0), 10);
        assert_eq!(m.instructions(1), 3);
    }

    #[test]
    fn weighted_speedup_math() {
        assert!((weighted_speedup(&[100.0, 100.0], &[50.0, 200.0]) - 1.25).abs() < 1e-12);
        assert!((weighted_speedup(&[10.0], &[10.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cores supported")]
    fn rejects_zero_cores() {
        let c = cfg();
        let _ = MulticoreHierarchy::new(0, c, Box::new(PlruPolicy::new(&c.llc)));
    }
}
