#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Memory-hierarchy simulation and performance models.
//!
//! The paper uses two simulators: a fast trace-driven LLC simulator with a
//! linear CPI estimate (the genetic algorithm's fitness function, Section
//! 4.3) and the CMP$im performance simulator (Section 4.5: out-of-order,
//! 4-wide, 128-entry window, 32 KB/8-way L1D, 256 KB/8-way L2, 4 MB/16-way
//! L3, 200-cycle DRAM). This crate provides both layers:
//!
//! * [`Hierarchy`] — a three-level cache hierarchy with dirty-writeback
//!   propagation and per-level statistics.
//! * [`capture_llc_stream`] — runs a reference stream through L1/L2 once
//!   and records the (policy-independent) LLC access stream, which every
//!   LLC policy experiment then replays cheaply.
//! * [`llc`] — the fast LLC-only replayer with warm-up/measure split
//!   (paper: first third warms the cache, the rest is measured).
//! * [`batch`] — the sharded single-pass multi-policy replayer: one
//!   routing pre-pass per stream, every (policy × shard) pair on the
//!   worker pool, results bit-identical to sequential [`replay_llc`].
//! * [`sliced`] — the bit-sliced kernel engine for self-describing
//!   set-local policies (packed PLRU trees, SWAR stacks/RRPVs), again
//!   bit-identical to [`replay_llc`], with mono fallback when a kernel
//!   declines the geometry.
//! * [`cpi`] — the linear CPI model (fitness) and the MLP-aware window
//!   model (reporting), substituting for CMP$im per DESIGN.md §2.
//! * [`optimal`] — Belady's MIN on a captured LLC stream (the paper's
//!   in-house optimal-misses simulator).

//! * [`multicore`] — the paper's future-work multi-core extension: private
//!   L1/L2 per core over one shared LLC, multiprogrammed mixes.

pub mod analysis;
pub mod batch;
pub mod cpi;
pub mod hierarchy;
pub mod llc;
pub mod multicore;
pub mod optimal;
pub mod prefetch;
pub mod sliced;

pub use batch::{
    replay_llc_sharded, replay_many, replay_many_sharded, replay_many_with_parallelism,
};
pub use cpi::{LinearCpiModel, WindowPerfModel};
pub use hierarchy::{capture_llc_stream, Hierarchy, HierarchyConfig, Inclusion, ServiceLevel};
pub use llc::{default_warmup, replay_llc, replay_llc_mono, LlcRunResult};
pub use multicore::MulticoreHierarchy;
pub use optimal::min_misses;
pub use sliced::replay_llc_sliced;
