//! Performance models that turn miss counts into cycle estimates.

use crate::hierarchy::ServiceLevel;

/// The paper's fitness-function model (Section 4.3): "estimate the
/// resulting cycles-per-instruction as a linear function of the number of
/// misses."
///
/// `cycles = instructions · base_cpi + llc_misses · miss_penalty`
///
/// Speedups are ratios of these cycle counts at equal instruction counts,
/// so `base_cpi` sets how memory-bound the model program is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCpiModel {
    /// Cycles per instruction when every access hits (paper pipeline is
    /// 4-wide: 0.25 at the ideal limit; we default to a realistic 0.7).
    pub base_cpi: f64,
    /// Cycles charged per LLC miss (paper DRAM latency: 200).
    pub miss_penalty: f64,
}

impl Default for LinearCpiModel {
    fn default() -> Self {
        LinearCpiModel {
            base_cpi: 0.7,
            miss_penalty: 200.0,
        }
    }
}

impl LinearCpiModel {
    /// Estimated cycles for a run.
    pub fn cycles(&self, instructions: u64, llc_misses: u64) -> f64 {
        instructions as f64 * self.base_cpi + llc_misses as f64 * self.miss_penalty
    }

    /// Speedup of `policy` over `baseline` at equal instruction counts.
    pub fn speedup(&self, instructions: u64, baseline_misses: u64, policy_misses: u64) -> f64 {
        let base = self.cycles(instructions, baseline_misses);
        let pol = self.cycles(instructions, policy_misses);
        if pol == 0.0 {
            1.0
        } else {
            base / pol
        }
    }
}

/// An MLP-aware window model substituting for the paper's CMP$im runs
/// (Section 4.5: out-of-order, 4-wide, 8-stage, 128-entry window).
///
/// The model charges `instructions / width` base cycles and prices LLC
/// misses by *clusters*: consecutive misses within `window` instructions
/// of each other overlap (memory-level parallelism), so a cluster costs
/// one full `dram_latency` plus a per-miss bandwidth serialization charge;
/// isolated misses pay the full latency. LLC and L2 hits add small fixed
/// latencies scaled by an overlap factor. This captures the first-order
/// effect the paper's fitness function cannot: bursts of misses are
/// cheaper per miss than scattered ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPerfModel {
    /// Issue width (paper: 4).
    pub width: f64,
    /// Instruction window (paper: 128).
    pub window: u64,
    /// DRAM latency in cycles (paper: 200).
    pub dram_latency: f64,
    /// Serialization charge for each overlapped miss after a cluster's
    /// first (models DRAM bandwidth/queueing).
    pub overlap_charge: f64,
    /// Latency charged per LLC hit (L2 miss) after out-of-order overlap.
    pub llc_hit_charge: f64,
    /// Latency charged per L2 hit after out-of-order overlap.
    pub l2_hit_charge: f64,
}

impl Default for WindowPerfModel {
    fn default() -> Self {
        WindowPerfModel {
            width: 4.0,
            window: 128,
            dram_latency: 200.0,
            overlap_charge: 40.0,
            llc_hit_charge: 12.0,
            l2_hit_charge: 3.0,
        }
    }
}

/// A `last_miss_instruction` sentinel meaning "no miss seen yet". Placed
/// a full window below zero so the very first miss always reads as
/// unclustered without a separate branch: `instructions - sentinel`
/// (wrapping) is `instructions + window + 1 > window`.
const NO_MISS_YET: u64 = u64::MAX - u64::MAX / 4;

/// Accumulates service events into a cycle estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfAccumulator {
    instructions: u64,
    l2_hits: u64,
    llc_hits: u64,
    misses: u64,
    clusters: u64,
    last_miss_instruction: u64,
}

impl Default for PerfAccumulator {
    fn default() -> Self {
        PerfAccumulator {
            instructions: 0,
            l2_hits: 0,
            llc_hits: 0,
            misses: 0,
            clusters: 0,
            last_miss_instruction: NO_MISS_YET,
        }
    }
}

impl PerfAccumulator {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one access: its instruction gap and the level that serviced
    /// it.
    ///
    /// The cluster test is branchless on purpose: whether two misses fall
    /// in the same window is data-dependent and mispredicts badly on real
    /// streams, and this runs once per replayed access.
    #[inline]
    pub fn note(&mut self, icount_delta: u32, level: ServiceLevel, model: &WindowPerfModel) {
        self.instructions += u64::from(icount_delta);
        match level {
            ServiceLevel::L1 => {}
            ServiceLevel::L2 => self.l2_hits += 1,
            ServiceLevel::Llc => self.llc_hits += 1,
            ServiceLevel::Memory => {
                self.misses += 1;
                let gap = self.instructions.wrapping_sub(self.last_miss_instruction);
                self.clusters += u64::from(gap > model.window);
                self.last_miss_instruction = self.instructions;
            }
        }
    }

    /// [`PerfAccumulator::note`] specialized for LLC replay, where every
    /// access is serviced by either the LLC or memory. Entirely
    /// branchless — the hit/miss outcome is data-dependent, and a
    /// mispredict per access would cost more than the whole cache lookup.
    #[inline]
    pub fn note_llc(&mut self, icount_delta: u32, hit: bool, model: &WindowPerfModel) {
        self.instructions += u64::from(icount_delta);
        self.llc_hits += u64::from(hit);
        self.misses += u64::from(!hit);
        let gap = self.instructions.wrapping_sub(self.last_miss_instruction);
        self.clusters += u64::from(!hit && gap > model.window);
        // On a hit, keep the previous value (select, not branch).
        self.last_miss_instruction = if hit {
            self.last_miss_instruction
        } else {
            self.instructions
        };
    }

    /// Total instructions observed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// LLC misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss clusters observed (≤ misses).
    pub fn clusters(&self) -> u64 {
        self.clusters
    }

    /// The cycle estimate under `model`.
    pub fn cycles(&self, model: &WindowPerfModel) -> f64 {
        let overlapped = self.misses - self.clusters;
        self.instructions as f64 / model.width
            + self.clusters as f64 * model.dram_latency
            + overlapped as f64 * model.overlap_charge
            + self.llc_hits as f64 * model.llc_hit_charge
            + self.l2_hits as f64 * model.l2_hit_charge
    }

    /// Instructions per cycle under `model`.
    pub fn ipc(&self, model: &WindowPerfModel) -> f64 {
        let c = self.cycles(model);
        if c == 0.0 {
            0.0
        } else {
            self.instructions as f64 / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_matches_formula() {
        let m = LinearCpiModel {
            base_cpi: 1.0,
            miss_penalty: 100.0,
        };
        assert_eq!(m.cycles(1000, 10), 2000.0);
        assert!((m.speedup(1000, 20, 10) - 3000.0 / 2000.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_misses_is_never_slower() {
        let m = LinearCpiModel::default();
        assert!(m.speedup(1_000_000, 5000, 4000) > 1.0);
        assert!(m.speedup(1_000_000, 4000, 5000) < 1.0);
        assert_eq!(m.speedup(1_000_000, 4000, 4000), 1.0);
    }

    #[test]
    fn clustered_misses_cost_less_than_isolated() {
        let model = WindowPerfModel::default();
        // Ten misses back-to-back (one cluster).
        let mut burst = PerfAccumulator::new();
        for _ in 0..10 {
            burst.note(4, ServiceLevel::Memory, &model);
        }
        // Ten misses 1000 instructions apart (ten clusters).
        let mut spread = PerfAccumulator::new();
        for _ in 0..10 {
            spread.note(1000, ServiceLevel::Memory, &model);
        }
        assert_eq!(burst.clusters(), 1);
        assert_eq!(spread.clusters(), 10);
        // Compare only the memory component (instruction base differs).
        let burst_mem = burst.cycles(&model) - burst.instructions() as f64 / model.width;
        let spread_mem = spread.cycles(&model) - spread.instructions() as f64 / model.width;
        assert!(burst_mem < spread_mem);
    }

    #[test]
    fn hits_are_cheap_but_not_free() {
        let model = WindowPerfModel::default();
        let mut acc = PerfAccumulator::new();
        acc.note(4, ServiceLevel::L1, &model);
        let l1_only = acc.cycles(&model);
        acc.note(0, ServiceLevel::Llc, &model);
        assert_eq!(acc.cycles(&model), l1_only + model.llc_hit_charge);
    }

    #[test]
    fn ipc_bounded_by_width() {
        let model = WindowPerfModel::default();
        let mut acc = PerfAccumulator::new();
        for _ in 0..1000 {
            acc.note(10, ServiceLevel::L1, &model);
        }
        assert!(
            (acc.ipc(&model) - 4.0).abs() < 1e-9,
            "pure L1 hits run at full width"
        );
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let acc = PerfAccumulator::new();
        assert_eq!(acc.cycles(&WindowPerfModel::default()), 0.0);
        assert_eq!(acc.ipc(&WindowPerfModel::default()), 0.0);
    }
}
