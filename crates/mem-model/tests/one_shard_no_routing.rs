//! Regression test for the single-core degenerate path: at a parallelism
//! target of 1 the batch engine must not run the `ShardedStream` routing
//! pre-pass at all (it used to, costing a measured 0.87× slowdown vs the
//! plain sequential replay), and the routing-free results must stay
//! bit-identical to `replay_llc`.
//!
//! This lives in its own integration-test binary on purpose: the routing
//! pre-pass counter is process-global, and the unit-test binary runs many
//! tests concurrently that legitimately route.

use mem_model::{replay_llc, replay_many_with_parallelism, WindowPerfModel};
use sim_core::policy::factory;
use sim_core::shard::routing_prepasses;
use sim_core::{Access, CacheGeometry};

fn stream(n: usize) -> Vec<Access> {
    let mut state = 0x0123_4567_89ab_cdefu64;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = if i % 3 == 0 {
                (state % 512) * 64
            } else {
                (state % 32768) * 64
            };
            let a = if state & 3 == 0 {
                Access::write(addr, state % 128)
            } else {
                Access::read(addr, state % 128)
            };
            a.with_icount_delta((state % 6) as u32 + 1)
        })
        .collect()
}

#[test]
fn one_shard_skips_routing_and_matches_sequential() {
    let geom = CacheGeometry::from_sets(128, 16, 64).unwrap();
    let accesses = stream(20_000);
    let warmup = 6_000;
    let perf = WindowPerfModel::default();

    let lru = factory(|g| Box::new(baselines::TrueLru::new(g)));
    let gippr =
        factory(|g| Box::new(gippr::GipprPolicy::new(g, gippr::vectors::wi_gippr()).unwrap()));
    let drrip = factory(|g| Box::new(baselines::DrripPolicy::new(g).unwrap()));
    let roster = [&lru, &gippr, &drrip];

    // Parallelism 1: no routing pre-pass may run.
    let before = routing_prepasses();
    let results = replay_many_with_parallelism(&accesses, geom, &roster, warmup, 1, &perf);
    assert_eq!(
        routing_prepasses(),
        before,
        "a ShardedStream routing pre-pass ran on the 1-shard degenerate path"
    );

    // …and the routing-free results are still bit-identical to replay_llc.
    for (f, got) in roster.iter().zip(&results) {
        let want = replay_llc(&accesses, geom, f(&geom), warmup, &perf);
        assert_eq!(
            *got,
            want,
            "1-shard result diverged for {}",
            f(&geom).name()
        );
    }

    // Sanity check on the counter itself: a multi-shard target routes
    // exactly once.
    let before = routing_prepasses();
    let sharded = replay_many_with_parallelism(&accesses, geom, &roster, warmup, 4, &perf);
    assert_eq!(routing_prepasses(), before + 1);
    assert_eq!(sharded, results, "shard count changed replay results");
}
