//! Differential tests for the single-pass Mattson profiler: one
//! stack-distance capture must reproduce per-configuration `replay_llc`
//! results for true LRU at every associativity at once, and its
//! histogram must be invariant to the order in which set-disjoint shards
//! are replayed (the property the sharded batch engine relies on).

use baselines::TrueLru;
use mem_model::{replay_llc, WindowPerfModel};
use proptest::prelude::*;
use sim_core::{Access, CacheGeometry, StackDistanceProfile};

/// Deterministic xorshift, the same generator family the other
/// integration tests use for synthetic streams.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Three access patterns that stress different stack-distance shapes:
/// a cache-thrashing sequential scan (all far distances), a hot working
/// set with occasional excursions (short distances), and a mixed
/// loop-plus-random pattern (the full histogram).
fn synthetic_workloads(accesses: usize) -> Vec<(&'static str, Vec<Access>)> {
    let line = 64u64;
    let mut out = Vec::new();

    let scan: Vec<Access> = (0..accesses)
        .map(|i| Access::read((i as u64 % 100_000) * line, 0x400 + (i as u64 % 64) * 4))
        .collect();
    out.push(("scan", scan));

    let mut state = 0x1234_5678_9abc_def0u64;
    let hot: Vec<Access> = (0..accesses)
        .map(|_| {
            let r = xorshift(&mut state);
            let block = if r % 8 == 0 { r % 65_536 } else { r % 512 };
            let a = Access::read(block * line, 0x400 + (r % 32) * 4);
            a.with_icount_delta((r % 7) as u32 + 1)
        })
        .collect();
    out.push(("hot-cold", hot));

    let mut state = 0xdead_beef_cafe_f00du64;
    let mixed: Vec<Access> = (0..accesses)
        .map(|i| {
            let r = xorshift(&mut state);
            let block = if i % 3 == 0 {
                (i as u64 / 3) % 4_096
            } else {
                r % 16_384
            };
            if r % 5 == 0 {
                Access::write(block * line, 0x800 + (r % 16) * 4)
            } else {
                Access::read(block * line, 0x800 + (r % 16) * 4)
            }
        })
        .collect();
    out.push(("loop-random", mixed));

    out
}

/// ISSUE satellite: one profile captured at the widest geometry must be
/// bit-identical to a dedicated true-LRU replay at ways 2, 4, 8, and 16
/// — hits, misses, instructions, and MPKI — on all three workloads.
#[test]
fn profile_matches_replay_at_every_associativity() {
    let sets = 256usize;
    let max_ways = 16usize;
    let perf = WindowPerfModel::default();
    for (name, stream) in synthetic_workloads(60_000) {
        let warmup = mem_model::default_warmup(stream.len());
        let wide = CacheGeometry::from_sets(sets, max_ways, 64).unwrap();
        let profile = StackDistanceProfile::capture(&stream, &wide, warmup, max_ways);
        for ways in [2usize, 4, 8, 16] {
            let geom = CacheGeometry::from_sets(sets, ways, 64).unwrap();
            let replay = replay_llc(&stream, geom, Box::new(TrueLru::new(&geom)), warmup, &perf);
            assert_eq!(
                profile.hits(ways),
                replay.stats.hits,
                "{name} @ {ways} ways"
            );
            assert_eq!(
                profile.misses(ways),
                replay.stats.misses,
                "{name} @ {ways} ways"
            );
            assert_eq!(profile.instructions(), replay.instructions, "{name}");
            assert_eq!(profile.mpki(ways), replay.mpki(), "{name} @ {ways} ways");
        }
    }
}

/// The single-pass profile stands in for a replay only when
/// `policy_qualifies` admits the policy, and that gate is load-bearing:
/// among the shipped policies only true LRU passes, and the nearest
/// near-miss — tree PseudoLRU, "almost equivalent" to LRU in miss ratio
/// — produces miss counts the profile does *not* predict. Admitting it
/// would silently corrupt every fast-path denominator.
#[test]
fn qualification_gate_admits_only_true_lru_and_is_load_bearing() {
    let sets = 256usize;
    let geom = CacheGeometry::from_sets(sets, 8, 64).unwrap();
    use sim_core::mattson::policy_qualifies;
    use sim_core::ReplacementPolicy;
    let candidates: Vec<Box<dyn ReplacementPolicy>> = vec![
        Box::new(TrueLru::new(&geom)),
        Box::new(gippr::PlruPolicy::new(&geom)),
        Box::new(baselines::SrripPolicy::new(&geom)),
        Box::new(baselines::FifoPolicy::new(&geom)),
        Box::new(
            baselines::RripIpvPolicy::new(&geom, baselines::RripIpvPolicy::srrip_vector()).unwrap(),
        ),
    ];
    for p in &candidates {
        assert_eq!(
            policy_qualifies(p.as_ref()),
            p.name() == "LRU",
            "{} mis-gated for the Mattson fast path",
            p.name()
        );
    }
    // Dynamic counterexample for the closest non-qualifier: on at least
    // one associativity the profile's LRU miss count differs from a
    // PseudoLRU replay, so the gate is not merely conservative.
    let perf = WindowPerfModel::default();
    let (_, stream) = synthetic_workloads(60_000).remove(1); // hot-cold
    let warmup = mem_model::default_warmup(stream.len());
    let wide = CacheGeometry::from_sets(sets, 16, 64).unwrap();
    let profile = StackDistanceProfile::capture(&stream, &wide, warmup, 16);
    let diverged = [4usize, 8, 16].iter().any(|&ways| {
        let g = CacheGeometry::from_sets(sets, ways, 64).unwrap();
        let replay = replay_llc(
            &stream,
            g,
            Box::new(gippr::PlruPolicy::new(&g)),
            warmup,
            &perf,
        );
        replay.stats.misses != profile.misses(ways)
    });
    assert!(
        diverged,
        "PseudoLRU reproduced the LRU profile everywhere; the gate test lost its teeth"
    );
}

/// Routes `stream` the way the sharded engine does: stable partition by
/// set range (shard = set's top bits), preserving per-set order.
fn partition_by_set(stream: &[Access], geom: &CacheGeometry, shards: usize) -> Vec<Vec<Access>> {
    let sets_per_shard = geom.sets() / shards;
    let mut parts = vec![Vec::new(); shards];
    for a in stream {
        let set = geom.set_of_block(a.addr / geom.line_bytes());
        parts[(set / sets_per_shard).min(shards - 1)].push(*a);
    }
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Permutation stability under shard routing: capturing each
    /// set-disjoint shard independently and `absorb`-merging the
    /// profiles — in ANY shard order — equals the whole-stream capture,
    /// and so does replaying an arbitrary interleaving that preserves
    /// per-set order. This is exactly the reordering the sharded batch
    /// engine introduces, so the profiler's histogram must not see it.
    #[test]
    fn histogram_is_stable_under_shard_routing(
        accesses in proptest::collection::vec((0u64..4096, 0u64..64, proptest::bool::ANY), 200..600),
        shards_pow in 1u32..3,
        interleave in proptest::collection::vec(0usize..4, 64),
    ) {
        let geom = CacheGeometry::from_sets(64, 8, 64).unwrap();
        let stream: Vec<Access> = accesses
            .iter()
            .map(|&(blk, pcidx, is_write)| {
                let addr = blk * geom.line_bytes();
                let pc = 0x400 + pcidx * 4;
                if is_write { Access::write(addr, pc) } else { Access::read(addr, pc) }
            })
            .collect();
        // Warmup positions are stream-global, which shard routing does
        // not preserve; the stability property is about the histogram,
        // so capture everything measured.
        let whole = StackDistanceProfile::capture(&stream, &geom, 0, geom.ways());

        let shards = 1usize << shards_pow;
        let parts = partition_by_set(&stream, &geom, shards);

        // Absorb-merge the per-shard profiles in a rotated (non-identity
        // for rotation > 0) shard order.
        let rotation = interleave[0] % shards;
        let mut merged: Option<StackDistanceProfile> = None;
        for i in 0..shards {
            let p = StackDistanceProfile::capture(
                &parts[(i + rotation) % shards], &geom, 0, geom.ways(),
            );
            match &mut merged {
                None => merged = Some(p),
                Some(m) => m.absorb(&p),
            }
        }
        let merged = merged.unwrap();
        prop_assert_eq!(merged.histogram(), whole.histogram());
        prop_assert_eq!(merged.beyond(), whole.beyond());
        prop_assert_eq!(merged.instructions(), whole.instructions());
        for ways in 1..=geom.ways() {
            prop_assert_eq!(merged.hits(ways), whole.hits(ways));
        }

        // One flat stream formed by interleaving the shards in a
        // generated order (per-set order preserved by construction).
        let mut cursors = vec![0usize; shards];
        let mut woven = Vec::with_capacity(stream.len());
        let mut pick = 0usize;
        while woven.len() < stream.len() {
            let preferred = interleave[woven.len() % interleave.len()] % shards;
            let shard = if cursors[preferred] < parts[preferred].len() {
                preferred
            } else {
                // Next shard with accesses left, round-robin from `pick`.
                while cursors[pick % shards] >= parts[pick % shards].len() {
                    pick += 1;
                }
                pick % shards
            };
            woven.push(parts[shard][cursors[shard]]);
            cursors[shard] += 1;
        }
        let rewoven = StackDistanceProfile::capture(&woven, &geom, 0, geom.ways());
        prop_assert_eq!(rewoven.histogram(), whole.histogram());
        prop_assert_eq!(rewoven.beyond(), whole.beyond());
    }
}
