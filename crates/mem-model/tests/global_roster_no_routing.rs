//! Regression test for the all-Global dispatch path: a roster whose
//! members all carry [`ShardAffinity::Global`] takes an exact
//! whole-stream pass per policy no matter how many shards are available,
//! so the batch engine must not pay for a `ShardedStream` routing
//! pre-pass it will never consume (BENCH_replay.json showed DRRIP at
//! 0.88× and WI-4-DGIPPR at 0.92× `sharded_speedup` before this fix).
//! Results must stay bit-identical to `replay_llc`.
//!
//! Lives in its own integration-test binary on purpose: the routing
//! pre-pass counter is process-global, and the unit-test binary runs
//! many tests concurrently that legitimately route.

use mem_model::{replay_llc, replay_many_with_parallelism, WindowPerfModel};
use sim_core::policy::factory;
use sim_core::shard::routing_prepasses;
use sim_core::{Access, CacheGeometry, ShardAffinity};

fn stream(n: usize) -> Vec<Access> {
    let mut state = 0xfeed_face_cafe_beefu64;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = if i % 3 == 0 {
                (state % 512) * 64
            } else {
                (state % 32768) * 64
            };
            let a = if state & 3 == 0 {
                Access::write(addr, state % 128)
            } else {
                Access::read(addr, state % 128)
            };
            a.with_icount_delta((state % 6) as u32 + 1)
        })
        .collect()
}

#[test]
fn all_global_roster_skips_routing_and_matches_sequential() {
    let geom = CacheGeometry::from_sets(128, 16, 64).unwrap();
    let accesses = stream(20_000);
    let warmup = 6_000;
    let perf = WindowPerfModel::default();

    // Every member must actually be Global or the test proves nothing.
    let drrip = factory(|g| Box::new(baselines::DrripPolicy::new(g).unwrap()));
    let ship = factory(|g| Box::new(baselines::ShipPolicy::new(g)));
    let dgippr = factory(|g| {
        Box::new(gippr::DgipprPolicy::four_vector(g, gippr::vectors::wi_4dgippr()).unwrap())
    });
    let roster = [&drrip, &ship, &dgippr];
    for f in &roster {
        assert_eq!(
            f(&geom).shard_affinity(),
            ShardAffinity::Global,
            "{} is not Global-affinity; pick another roster member",
            f(&geom).name()
        );
    }

    // A generous multi-shard target: routing would have run before the
    // fix, but no member can consume it, so zero pre-passes may run.
    let before = routing_prepasses();
    let results = replay_many_with_parallelism(&accesses, geom, &roster, warmup, 8, &perf);
    assert_eq!(
        routing_prepasses(),
        before,
        "a ShardedStream routing pre-pass ran for an all-Global roster"
    );

    // …and the routing-free results are still bit-identical to replay_llc.
    for (f, got) in roster.iter().zip(&results) {
        let want = replay_llc(&accesses, geom, f(&geom), warmup, &perf);
        assert_eq!(
            *got,
            want,
            "all-Global result diverged for {}",
            f(&geom).name()
        );
    }

    // A mixed roster still routes (exactly once): the fix must not
    // disable sharding for rosters that can use it.
    let lru = factory(|g| Box::new(baselines::TrueLru::new(g)));
    let mixed = [&lru, &drrip];
    let before = routing_prepasses();
    let _ = replay_many_with_parallelism(&accesses, geom, &mixed, warmup, 8, &perf);
    assert_eq!(
        routing_prepasses(),
        before + 1,
        "a mixed roster with a SetLocal member must still route"
    );
}
