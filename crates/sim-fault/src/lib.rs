#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic fault injection for the simulation pipeline.
//!
//! The crash-safety machinery in this workspace — atomic artifact writes,
//! the resumable experiment manifest, GA checkpoints, worker-pool
//! degradation — is only trustworthy if every failure path has a test that
//! exercises it *deterministically*. This crate provides the injection
//! points those tests drive: a **fault plan** names points in the pipeline
//! and the ordinal at which each should fire, and instrumented code asks
//! the plan before every risky operation.
//!
//! # Zero overhead by default
//!
//! Without the `injection` cargo feature every hook in this crate is an
//! `#[inline(always)]` constant (`WriteFault::None`, `TaskFault::None`,
//! `false`): release builds of the simulator carry no fault-injection
//! branches at all. Test builds enable the feature through dev-dependency
//! feature unification, and standalone process runs (the CI kill-and-resume
//! smoke) opt in with `--features sim-fault/injection`.
//!
//! # Fault-plan grammar
//!
//! A plan is read from the `SIM_FAULT` environment variable (or installed
//! programmatically with [`with_plan`]):
//!
//! ```text
//! SIM_FAULT  = clause (';' clause)*
//! clause     = kind ['@' target] (':' option)*
//! kind       = 'torn' | 'enospc' | 'corrupt' | 'exit'      (write points)
//!            | 'panic' | 'stall'                           (task points)
//!            | 'spawn-fail'                                (pool spawn)
//!            | 'short-read' | 'short-write'                (connection I/O)
//!            | 'disconnect' | 'conn-stall'                 (connection I/O)
//!            | 'accept-fail'                               (listener accept)
//! option     = 'n=' COUNT    fire on the COUNT-th match (1-based, default 1)
//!            | 'sticky'      keep firing from the n-th match onward
//!            | 'keep=' BYTES torn writes keep this payload prefix (default half)
//!                            (short-read/short-write: bytes delivered
//!                            before the connection breaks, default half)
//!            | 'ms=' MILLIS  stall duration (default 200)
//!            | 'task=' INDEX task faults only hit this task index (default any)
//! ```
//!
//! `target` is a substring matched against the point's label (an artifact
//! path for write points, the pool batch label for task points); a clause
//! without a target matches every label. Examples:
//!
//! ```text
//! SIM_FAULT='torn@fig10.csv'            # truncate fig10's first write, then fail it
//! SIM_FAULT='enospc@.wlc:n=2'           # ENOSPC-style error on the 2nd spill write
//! SIM_FAULT='corrupt@.wlc'              # commit a corrupted spill (exercises CRC fallback)
//! SIM_FAULT='exit@fig11.csv'            # simulated hard kill mid-write (tmp written, no rename)
//! SIM_FAULT='panic@fitness:task=3'      # panic in worker task 3 of batches labeled "fitness"
//! SIM_FAULT='stall@replay:task=0:ms=300'# hang task 0 for 300 ms (watchdog fodder)
//! SIM_FAULT='spawn-fail:sticky'         # every pool worker spawn fails
//! ```
//!
//! # What fires where
//!
//! * **Write points** ([`on_write`]) guard atomic artifact writes
//!   (`sim_core::persist::atomic_write`): `torn` truncates the payload and
//!   fails before the rename (the classic torn-write crash), `enospc`
//!   fails the write outright with an I/O error, `corrupt` flips a payload
//!   byte but lets the commit succeed (deterministic media corruption for
//!   CRC-fallback tests), and `exit` asks the caller to terminate the
//!   process after the temp file is written but before the rename — the
//!   harshest crash an atomic writer must survive.
//! * **Task points** ([`on_task`]) guard worker-pool task execution:
//!   `panic` raises inside the task, `stall` sleeps the task long enough
//!   for the pool watchdog to notice.
//! * **Spawn points** ([`on_spawn`]) make `WorkerPool` thread spawns fail,
//!   driving the graceful-degradation path.
//! * **Connection points** ([`on_conn`]) guard socket reads and writes in
//!   the policy-evaluation daemon (`sim-serve`): `short-read` delivers a
//!   byte prefix then breaks the connection (the classic half-frame), and
//!   `short-write` is its sending-side twin; `disconnect` severs the
//!   connection before any byte moves; `conn-stall` delays the operation
//!   (deadline-wheel fodder). `accept-fail` fires at the listener's accept
//!   point, which a robust daemon must survive without dropping existing
//!   sessions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What an instrumented artifact write should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault: perform the write normally.
    None,
    /// Write only a prefix of the payload, then fail before committing
    /// (the torn-write crash). `keep` is the prefix length in bytes;
    /// `None` means half the payload.
    Torn(Option<usize>),
    /// Fail the write with an ENOSPC-style I/O error before any byte of
    /// the destination is touched.
    Error,
    /// Corrupt one payload byte but let the commit succeed — the
    /// deterministic stand-in for post-commit media corruption, exercising
    /// CRC-validation fallbacks in readers.
    Corrupt,
    /// Terminate the process after the temporary file is written but
    /// before the rename (the caller performs the exit) — a simulated
    /// SIGKILL at the worst moment of an atomic write.
    Exit,
}

/// What an instrumented connection operation (socket read/write/accept)
/// should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// No fault: perform the operation normally.
    None,
    /// Deliver only a byte prefix, then break the connection. `keep` is
    /// the prefix length in bytes; `None` means half the requested
    /// transfer (the mid-frame disconnect a frame decoder must detect).
    Short(Option<usize>),
    /// Sever the connection before any byte moves.
    Disconnect,
    /// Delay the operation this many milliseconds, then proceed normally
    /// (slow-peer and idle-timeout fodder).
    Stall(u64),
}

/// What an instrumented pool task should do before running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFault {
    /// No fault: run the task normally.
    None,
    /// Panic inside the task (exercises the pool's panic protocol).
    Panic,
    /// Sleep this many milliseconds before running (exercises the
    /// hung-task watchdog).
    Stall(u64),
}

/// The fault kinds a clause can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Torn,
    Enospc,
    Corrupt,
    Exit,
    Panic,
    Stall,
    SpawnFail,
    ShortRead,
    ShortWrite,
    Disconnect,
    ConnStall,
    AcceptFail,
}

impl Kind {
    fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "torn" => Kind::Torn,
            "enospc" => Kind::Enospc,
            "corrupt" => Kind::Corrupt,
            "exit" => Kind::Exit,
            "panic" => Kind::Panic,
            "stall" => Kind::Stall,
            "spawn-fail" => Kind::SpawnFail,
            "short-read" => Kind::ShortRead,
            "short-write" => Kind::ShortWrite,
            "disconnect" => Kind::Disconnect,
            "conn-stall" => Kind::ConnStall,
            "accept-fail" => Kind::AcceptFail,
            _ => return None,
        })
    }

    fn is_write(self) -> bool {
        matches!(self, Kind::Torn | Kind::Enospc | Kind::Corrupt | Kind::Exit)
    }

    fn is_conn(self) -> bool {
        matches!(
            self,
            Kind::ShortRead | Kind::ShortWrite | Kind::Disconnect | Kind::ConnStall
        )
    }
}

/// One parsed fault clause with its firing counter.
#[derive(Debug)]
struct Clause {
    kind: Kind,
    /// Substring matched against the point label; `None` matches any.
    target: Option<String>,
    /// Fire on the `n`-th match (1-based).
    n: u64,
    /// Keep firing from the `n`-th match onward instead of exactly once.
    sticky: bool,
    /// Torn writes: payload prefix kept, in bytes.
    keep: Option<usize>,
    /// Stall duration in milliseconds.
    ms: u64,
    /// Task faults: only this task index (`None` matches any).
    task: Option<usize>,
    /// Matching occurrences seen so far.
    hits: AtomicU64,
}

impl Clause {
    /// Records a label match and reports whether the clause fires on it.
    fn strike(&self) -> bool {
        let ordinal = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
        if self.sticky {
            ordinal >= self.n
        } else {
            ordinal == self.n
        }
    }

    fn matches_label(&self, label: &str) -> bool {
        self.target.as_deref().map_or(true, |t| label.contains(t))
    }
}

/// A parsed fault plan: an ordered list of clauses with firing state.
#[derive(Debug, Default)]
pub struct Plan {
    clauses: Vec<Clause>,
}

impl Plan {
    /// Parses a `SIM_FAULT` spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown kind or malformed
    /// option; an empty spec parses to an empty plan.
    pub fn parse(spec: &str) -> Result<Plan, String> {
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let mut parts = raw.split(':');
            let head = parts.next().expect("split yields at least one part");
            let (kind_str, target) = match head.split_once('@') {
                Some((k, t)) => (k, Some(t.to_string())),
                None => (head, None),
            };
            let kind = Kind::parse(kind_str)
                .ok_or_else(|| format!("unknown fault kind {kind_str:?} in clause {raw:?}"))?;
            let mut clause = Clause {
                kind,
                target,
                n: 1,
                sticky: false,
                keep: None,
                ms: 200,
                task: None,
                hits: AtomicU64::new(0),
            };
            for opt in parts {
                match opt.split_once('=') {
                    Some(("n", v)) => {
                        clause.n = parse_num(v, raw)?;
                        if clause.n == 0 {
                            return Err(format!("n=0 in clause {raw:?} (ordinals are 1-based)"));
                        }
                    }
                    Some(("keep", v)) => clause.keep = Some(parse_num(v, raw)? as usize),
                    Some(("ms", v)) => clause.ms = parse_num(v, raw)?,
                    Some(("task", v)) => clause.task = Some(parse_num(v, raw)? as usize),
                    None if opt == "sticky" => clause.sticky = true,
                    _ => return Err(format!("unknown option {opt:?} in clause {raw:?}")),
                }
            }
            clauses.push(clause);
        }
        Ok(Plan { clauses })
    }

    /// Whether the plan has any clauses at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Consults write-point clauses for the artifact labeled `label`
    /// (first firing clause wins).
    pub fn write_fault(&self, label: &str) -> WriteFault {
        for c in &self.clauses {
            if c.kind.is_write() && c.matches_label(label) && c.strike() {
                return match c.kind {
                    Kind::Torn => WriteFault::Torn(c.keep),
                    Kind::Enospc => WriteFault::Error,
                    Kind::Corrupt => WriteFault::Corrupt,
                    Kind::Exit => WriteFault::Exit,
                    _ => unreachable!("is_write gated"),
                };
            }
        }
        WriteFault::None
    }

    /// Consults task-point clauses for task `index` of the batch labeled
    /// `label`.
    pub fn task_fault(&self, label: &str, index: usize) -> TaskFault {
        for c in &self.clauses {
            let index_ok = c.task.map_or(true, |t| t == index);
            if matches!(c.kind, Kind::Panic | Kind::Stall)
                && c.matches_label(label)
                && index_ok
                && c.strike()
            {
                return match c.kind {
                    Kind::Panic => TaskFault::Panic,
                    Kind::Stall => TaskFault::Stall(c.ms),
                    _ => unreachable!("kind gated"),
                };
            }
        }
        TaskFault::None
    }

    /// Consults spawn-point clauses; `true` means this spawn should fail.
    pub fn spawn_fault(&self) -> bool {
        self.clauses
            .iter()
            .any(|c| c.kind == Kind::SpawnFail && c.strike())
    }

    /// Consults connection-point clauses for a socket `op` on the
    /// connection labeled `label` (first firing clause wins).
    /// `short-read` clauses only match reads, `short-write` only writes;
    /// `disconnect` and `conn-stall` match either direction.
    pub fn conn_fault(&self, op: ConnOp, label: &str) -> ConnFault {
        for c in &self.clauses {
            let dir_ok = match c.kind {
                Kind::ShortRead => op == ConnOp::Read,
                Kind::ShortWrite => op == ConnOp::Write,
                Kind::Disconnect | Kind::ConnStall => true,
                _ => false,
            };
            if c.kind.is_conn() && dir_ok && c.matches_label(label) && c.strike() {
                return match c.kind {
                    Kind::ShortRead | Kind::ShortWrite => ConnFault::Short(c.keep),
                    Kind::Disconnect => ConnFault::Disconnect,
                    Kind::ConnStall => ConnFault::Stall(c.ms),
                    _ => unreachable!("is_conn gated"),
                };
            }
        }
        ConnFault::None
    }

    /// Consults accept-point clauses for the listener labeled `label`;
    /// `true` means this accept should fail with a transient error.
    pub fn accept_fault(&self, label: &str) -> bool {
        self.clauses
            .iter()
            .any(|c| c.kind == Kind::AcceptFail && c.matches_label(label) && c.strike())
    }
}

/// Direction of an instrumented connection operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnOp {
    /// Receiving bytes from the peer.
    Read,
    /// Sending bytes to the peer.
    Write,
}

fn parse_num(v: &str, clause: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("bad number {v:?} in clause {clause:?}"))
}

/// The installed plan. `ACTIVE` is the hooks' fast path: one relaxed load
/// when no plan is installed.
static PLAN: Mutex<Option<Arc<Plan>>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_LOADED: OnceLock<()> = OnceLock::new();

fn plan_lock() -> std::sync::MutexGuard<'static, Option<Arc<Plan>>> {
    // A panic while holding the lock (e.g. a panicking `with_plan` body)
    // poisons it; the stored plan is still coherent, so keep going.
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn install(plan: Option<Arc<Plan>>) -> Option<Arc<Plan>> {
    let mut slot = plan_lock();
    let active = plan.as_ref().is_some_and(|p| !p.is_empty());
    let previous = std::mem::replace(&mut *slot, plan);
    ACTIVE.store(active, Ordering::SeqCst);
    previous
}

/// Loads `SIM_FAULT` from the environment exactly once (the first hook or
/// [`with_plan`] call wins; later environment changes are ignored).
fn ensure_env_loaded() {
    ENV_LOADED.get_or_init(|| {
        if let Ok(spec) = std::env::var("SIM_FAULT") {
            match Plan::parse(&spec) {
                Ok(plan) if !plan.is_empty() => {
                    eprintln!("sim-fault: armed with SIM_FAULT={spec:?}");
                    install(Some(Arc::new(plan)));
                }
                Ok(_) => {}
                Err(e) => eprintln!("sim-fault: ignoring unparseable SIM_FAULT: {e}"),
            }
        }
    });
}

#[cfg(feature = "injection")]
fn current_plan() -> Option<Arc<Plan>> {
    ensure_env_loaded();
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    plan_lock().clone()
}

/// Serializes tests that install process-global plans.
static TEST_MUTEX: Mutex<()> = Mutex::new(());

/// Installs `spec` as the process-global plan for the duration of `f`,
/// restoring the previous plan afterwards (even on panic). Tests that
/// inject faults must use this: it serializes against other `with_plan`
/// callers so concurrent tests do not see each other's plans.
///
/// # Panics
///
/// Panics if `spec` does not parse — a test bug, not a runtime condition.
pub fn with_plan<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    let _guard = TEST_MUTEX
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    ensure_env_loaded();
    let plan = Plan::parse(spec).expect("with_plan spec must parse");
    let previous = install(Some(Arc::new(plan)));

    /// Restores the previous plan even if `f` unwinds (panic-injection
    /// tests do exactly that).
    struct Restore(Option<Arc<Plan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            install(self.0.take());
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Whether the `injection` feature is compiled into this build. Tests in
/// consuming crates guard on this so they skip (rather than silently pass)
/// if run without dev-dependency feature unification.
pub const COMPILED_IN: bool = cfg!(feature = "injection");

/// Whether fault injection is compiled in *and* a non-empty plan is
/// currently installed.
pub fn armed() -> bool {
    #[cfg(feature = "injection")]
    {
        ensure_env_loaded();
        ACTIVE.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "injection"))]
    {
        false
    }
}

/// Write-point hook: what the artifact write labeled `label` should do.
/// Inlined to `WriteFault::None` unless the `injection` feature is on.
#[inline(always)]
pub fn on_write(label: &str) -> WriteFault {
    #[cfg(feature = "injection")]
    {
        match current_plan() {
            Some(plan) => plan.write_fault(label),
            None => WriteFault::None,
        }
    }
    #[cfg(not(feature = "injection"))]
    {
        let _ = label;
        WriteFault::None
    }
}

/// Task-point hook: what task `index` of the pool batch labeled `label`
/// should do. Inlined to `TaskFault::None` unless `injection` is on.
#[inline(always)]
pub fn on_task(label: &str, index: usize) -> TaskFault {
    #[cfg(feature = "injection")]
    {
        match current_plan() {
            Some(plan) => plan.task_fault(label, index),
            None => TaskFault::None,
        }
    }
    #[cfg(not(feature = "injection"))]
    {
        let _ = (label, index);
        TaskFault::None
    }
}

/// Spawn-point hook: whether this worker-thread spawn should fail.
/// Inlined to `false` unless `injection` is on.
#[inline(always)]
pub fn on_spawn() -> bool {
    #[cfg(feature = "injection")]
    {
        match current_plan() {
            Some(plan) => plan.spawn_fault(),
            None => false,
        }
    }
    #[cfg(not(feature = "injection"))]
    {
        false
    }
}

/// Connection-point hook: what the socket `op` on the connection labeled
/// `label` should do. Inlined to `ConnFault::None` unless `injection` is
/// on.
#[inline(always)]
pub fn on_conn(op: ConnOp, label: &str) -> ConnFault {
    #[cfg(feature = "injection")]
    {
        match current_plan() {
            Some(plan) => plan.conn_fault(op, label),
            None => ConnFault::None,
        }
    }
    #[cfg(not(feature = "injection"))]
    {
        let _ = (op, label);
        ConnFault::None
    }
}

/// Accept-point hook: whether this listener accept should fail with a
/// transient error. Inlined to `false` unless `injection` is on.
#[inline(always)]
pub fn on_accept(label: &str) -> bool {
    #[cfg(feature = "injection")]
    {
        match current_plan() {
            Some(plan) => plan.accept_fault(label),
            None => false,
        }
    }
    #[cfg(not(feature = "injection"))]
    {
        let _ = label;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_option() {
        let plan = Plan::parse(
            "torn@fig10.csv:keep=7; enospc@.wlc:n=2:sticky; corrupt; exit@x; \
             panic@fitness:task=3; stall@replay:ms=50; spawn-fail",
        )
        .unwrap();
        assert_eq!(plan.clauses.len(), 7);
        assert_eq!(plan.clauses[0].kind, Kind::Torn);
        assert_eq!(plan.clauses[0].keep, Some(7));
        assert_eq!(plan.clauses[1].n, 2);
        assert!(plan.clauses[1].sticky);
        assert_eq!(plan.clauses[2].target, None);
        assert_eq!(plan.clauses[4].task, Some(3));
        assert_eq!(plan.clauses[5].ms, 50);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Plan::parse("explode@x").is_err());
        assert!(Plan::parse("torn:n=zero").is_err());
        assert!(Plan::parse("torn:n=0").is_err());
        assert!(Plan::parse("torn:bogus").is_err());
        assert!(Plan::parse("").unwrap().is_empty());
        assert!(Plan::parse(" ; ").unwrap().is_empty());
    }

    #[test]
    fn write_fault_fires_on_nth_match_exactly_once() {
        let plan = Plan::parse("enospc@spill:n=2").unwrap();
        assert_eq!(plan.write_fault("a/spill.wlc"), WriteFault::None);
        assert_eq!(plan.write_fault("a/spill.wlc"), WriteFault::Error);
        assert_eq!(plan.write_fault("a/spill.wlc"), WriteFault::None);
        // Non-matching labels never advance the counter.
        let plan = Plan::parse("torn@fig10").unwrap();
        assert_eq!(plan.write_fault("fig11.csv"), WriteFault::None);
        assert_eq!(plan.write_fault("fig10.csv"), WriteFault::Torn(None));
    }

    #[test]
    fn sticky_fires_from_nth_onward() {
        let plan = Plan::parse("spawn-fail:n=2:sticky").unwrap();
        assert!(!plan.spawn_fault());
        assert!(plan.spawn_fault());
        assert!(plan.spawn_fault());
    }

    #[test]
    fn task_fault_filters_by_label_and_index() {
        let plan = Plan::parse("panic@fitness:task=3; stall@replay:ms=9:sticky").unwrap();
        assert_eq!(plan.task_fault("fitness", 2), TaskFault::None);
        assert_eq!(plan.task_fault("fitness", 3), TaskFault::Panic);
        assert_eq!(plan.task_fault("fitness", 3), TaskFault::None, "fired once");
        assert_eq!(plan.task_fault("replay", 0), TaskFault::Stall(9));
        assert_eq!(plan.task_fault("replay", 7), TaskFault::Stall(9));
        assert_eq!(plan.task_fault("other", 0), TaskFault::None);
    }

    #[test]
    fn conn_faults_filter_by_direction_and_label() {
        let plan = Plan::parse(
            "short-read@tenant-a:keep=5; short-write@tenant-b; disconnect@tenant-c; \
             conn-stall@tenant-d:ms=7:sticky",
        )
        .unwrap();
        // short-read never matches writes (and vice versa).
        assert_eq!(plan.conn_fault(ConnOp::Write, "tenant-a"), ConnFault::None);
        assert_eq!(
            plan.conn_fault(ConnOp::Read, "tenant-a"),
            ConnFault::Short(Some(5))
        );
        assert_eq!(plan.conn_fault(ConnOp::Read, "tenant-a"), ConnFault::None);
        assert_eq!(plan.conn_fault(ConnOp::Read, "tenant-b"), ConnFault::None);
        assert_eq!(
            plan.conn_fault(ConnOp::Write, "tenant-b"),
            ConnFault::Short(None)
        );
        // disconnect and conn-stall hit both directions.
        assert_eq!(
            plan.conn_fault(ConnOp::Write, "tenant-c"),
            ConnFault::Disconnect
        );
        assert_eq!(
            plan.conn_fault(ConnOp::Read, "tenant-d"),
            ConnFault::Stall(7)
        );
        assert_eq!(
            plan.conn_fault(ConnOp::Write, "tenant-d"),
            ConnFault::Stall(7),
            "sticky keeps firing"
        );
    }

    #[test]
    fn accept_fault_fires_per_plan() {
        let plan = Plan::parse("accept-fail@serve:n=2").unwrap();
        assert!(!plan.accept_fault("serve"));
        assert!(plan.accept_fault("serve"));
        assert!(!plan.accept_fault("serve"));
        assert!(!plan.accept_fault("other"), "label mismatch never fires");
    }

    #[test]
    fn conn_kinds_do_not_fire_write_or_task_points() {
        let plan = Plan::parse("short-read; disconnect; accept-fail").unwrap();
        assert_eq!(plan.write_fault("x.csv"), WriteFault::None);
        assert_eq!(plan.task_fault("batch", 0), TaskFault::None);
        assert!(!plan.spawn_fault());
    }

    #[test]
    fn first_matching_clause_wins() {
        let plan = Plan::parse("torn@csv; enospc@fig10").unwrap();
        assert_eq!(plan.write_fault("fig10.csv"), WriteFault::Torn(None));
        // The torn clause already fired; the enospc clause is next in line.
        assert_eq!(plan.write_fault("fig10.csv"), WriteFault::Error);
    }

    #[cfg(feature = "injection")]
    #[test]
    fn hooks_follow_installed_plan_and_restore() {
        with_plan("corrupt@hooked:n=1", || {
            assert!(armed());
            assert_eq!(on_write("unrelated"), WriteFault::None);
            assert_eq!(on_write("hooked.bin"), WriteFault::Corrupt);
            assert_eq!(on_write("hooked.bin"), WriteFault::None);
        });
        assert_eq!(on_write("hooked.bin"), WriteFault::None);
    }

    #[cfg(feature = "injection")]
    #[test]
    fn with_plan_restores_after_panic() {
        let result = std::panic::catch_unwind(|| {
            with_plan("panic@boom", || {
                assert_eq!(on_task("boom", 0), TaskFault::Panic);
                panic!("simulated test body panic");
            })
        });
        assert!(result.is_err());
        assert_eq!(on_task("boom", 0), TaskFault::None, "plan restored");
    }
}
