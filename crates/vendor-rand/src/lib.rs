#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) subset of the rand 0.8 API the workspace actually
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a fast,
//! high-quality generator. It does **not** reproduce upstream `StdRng`'s
//! (ChaCha12) output stream; everything in this workspace only relies on
//! determinism-per-seed, never on specific values.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value uniformly sampleable from an [`RngCore`] (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A type with uniform range sampling (mirrors `rand::distributions::uniform::SampleUniform`).
///
/// The single generic [`SampleRange`] impl below goes through this trait so
/// integer-literal ranges infer their element type from `gen_range`'s
/// return type, exactly like upstream rand.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_uniform {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Two's-complement span via the unsigned twin, so ranges
                // wider than the signed max still sample correctly.
                let span = hi.wrapping_sub(lo) as $ut as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as $ut as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_sample_uniform!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// A range a value can be uniformly drawn from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshots the generator's internal state (GA checkpointing:
        /// a resumed run must continue the exact random stream).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_snapshot_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            a.gen::<u64>();
        }
        let snap = a.state();
        let tail: Vec<u64> = (0..20).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..20).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, resumed, "from_state must continue the exact stream");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(take(&mut rng) < 10);
    }
}
