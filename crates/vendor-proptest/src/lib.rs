#![forbid(unsafe_code)]

//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! implements the subset of the proptest v1 API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`strategy::Just`]
//! strategies, [`collection::vec`], and the `bool::ANY` / `num::u64::ANY`
//! constants.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! generated inputs are printed (via `Debug`) and the test panics with the
//! original assertion message. Case generation is deterministic per test
//! (seeded from the test's module path), so failures reproduce exactly.

use rand::rngs::StdRng;

/// The RNG threaded through strategy generation.
pub type TestRng = StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Generates values of an associated type from an RNG. The trimmed-down
    /// analogue of proptest's `Strategy` (no shrinking, no value trees).
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (backs [`prop_oneof!`]).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// The `any::<T>()` strategy: full-domain uniform values.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// The (zero-sized) strategy value, usable in `const` position.
        pub const ANY: Any<T> = Any(std::marker::PhantomData);
    }

    /// Returns the full-domain strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;
        fn generate(&self, rng: &mut TestRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as a `vec` size: a fixed length or a length range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values from `element`, with length in `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::{Any, Strategy};
    use super::TestRng;
    use rand::Rng;

    /// Uniform `true`/`false`.
    pub const ANY: Any<bool> = Any::ANY;

    /// Weighted boolean: `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    /// Strategy returned by [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

pub mod num {
    //! Numeric full-domain strategy constants.

    /// `u64` strategies.
    pub mod u64 {
        use crate::strategy::Any;

        /// Uniform over all of `u64`.
        pub const ANY: Any<u64> = Any::ANY;
    }

    /// `u32` strategies.
    pub mod u32 {
        use crate::strategy::Any;

        /// Uniform over all of `u32`.
        pub const ANY: Any<u32> = Any::ANY;
    }
}

pub mod test_runner {
    //! Per-test configuration and the case-execution loop.

    use super::TestRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Knobs for a `proptest!` block (only `cases` is supported).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; keep the debug-profile test suite
            // quick while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// Runs `case` for each of `config.cases` deterministically-seeded
    /// cases. `case` receives a fresh RNG and must panic on failure; the
    /// macro wrapper prints the generated inputs before propagating.
    pub fn run_cases(test_name: &str, config: &ProptestConfig, case: impl Fn(&mut TestRng)) {
        for i in 0..config.cases {
            let mut h = DefaultHasher::new();
            test_name.hash(&mut h);
            i.hash(&mut h);
            let mut rng = TestRng::seed_from_u64(h.finish());
            case(&mut rng);
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     /// doc comments and attributes pass through
///     #[test]
///     fn my_test(x in 0u8..16, v in proptest::collection::vec(any::<u64>(), 0..50)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        use $crate::strategy::Strategy as _;
                        $(let $arg = (&$strategy).generate(rng);)*
                        let inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; ",)*),
                            $(&$arg,)*
                        );
                        let result = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(move || { $body })
                        );
                        if let Err(payload) = result {
                            eprintln!(
                                "proptest case failed for {}: {}",
                                stringify!($name),
                                inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure; the
/// macro wrapper reports the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_and_just() {
        use crate::strategy::{Just, Strategy, Union};
        use rand::SeedableRng;
        let u = Union::new(vec![Just(1u32), Just(2), Just(3)]);
        let mut rng = crate::TestRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen, [1, 2, 3].into_iter().collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and vec sizes honor their range.
        #[test]
        fn generated_values_in_bounds(
            x in 0u8..16,
            v in crate::collection::vec(0u64..100, 3..7),
            flag in crate::bool::ANY,
            pair in (0usize..4, 0.0f64..1.0),
        ) {
            prop_assert!(x < 16);
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..1.0).contains(&pair.1));
            let _ = flag;
        }

        /// prop_map transforms values.
        #[test]
        fn map_applies(n in (0u32..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 21);
        }

        /// prop_oneof picks only listed options.
        #[test]
        fn oneof_picks_listed(k in prop_oneof![Just(2usize), Just(4), Just(8)]) {
            prop_assert!(k == 2 || k == 4 || k == 8);
        }
    }
}
