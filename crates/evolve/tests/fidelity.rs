//! Quality gates for the set-sampled fitness tier: the cheap tier must
//! *rank* genomes like full replay does (that is all the ladder needs
//! from it — promotion decisions, not absolute scores), and the sampled
//! set subset must be a pure function of stream and geometry — identical
//! across worker thread counts and across context rebuilds (a resumed
//! run re-captures its streams from scratch).

use evolve::{FitnessContext, FitnessScale, Substrate};
use gippr::Ipv;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traces::spec2006::Spec2006;

fn ctx(threads: usize) -> FitnessContext {
    FitnessContext::for_benchmarks(
        &[Spec2006::Libquantum, Spec2006::CactusADM],
        1,
        15_000,
        FitnessScale { shift: 6, threads },
    )
}

fn genome_batch(n: usize, assoc: usize, seed: u64) -> Vec<Ipv> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Ipv::random(assoc, &mut rng)).collect()
}

/// Kendall rank correlation (tau-a over strictly ordered pairs; ties in
/// either ranking are skipped).
fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    let (mut concordant, mut discordant) = (0u64, 0u64);
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 || db == 0.0 {
                continue;
            }
            if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = concordant + discordant;
    assert!(total > 0, "degenerate batch: every pair tied");
    (concordant as f64 - discordant as f64) / total as f64
}

#[test]
fn sampled_fitness_rank_correlates_with_full_replay() {
    let c = ctx(2);
    let ways = c.geometry().ways();
    let batch = genome_batch(24, ways, 0xC0FFEE);
    let full: Vec<f64> = batch
        .iter()
        .map(|g| c.fitness_single(g, Substrate::Plru))
        .collect();
    let sampled: Vec<f64> = batch
        .iter()
        .map(|g| c.fitness_single_sampled(g, Substrate::Plru))
        .collect();
    let tau = kendall_tau(&full, &sampled);
    assert!(
        tau >= 0.5,
        "set-sampled fitness must rank like full replay: kendall tau {tau:.3} < 0.5 \
         (full {full:?} vs sampled {sampled:?})"
    );
}

#[test]
fn sampled_fitness_is_bit_stable_across_threads_and_rebuilds() {
    // Different worker-pool widths (the sharded replay driver) and a
    // from-scratch context rebuild (what a resumed island does) must
    // produce bit-identical sampled fitness — the sampled subset and its
    // replay never depend on parallelism or process history.
    let one = ctx(1);
    let four = ctx(4);
    let rebuilt = ctx(1);
    let batch = genome_batch(8, one.geometry().ways(), 0x5EED);
    for g in &batch {
        let a = one.fitness_single_sampled(g, Substrate::Plru).to_bits();
        let b = four.fitness_single_sampled(g, Substrate::Plru).to_bits();
        let r = rebuilt.fitness_single_sampled(g, Substrate::Plru).to_bits();
        assert_eq!(a, b, "thread count changed the sampled fitness of {g}");
        assert_eq!(a, r, "context rebuild changed the sampled fitness of {g}");
    }
    // The profile tier is equally structural.
    for g in &batch {
        assert_eq!(
            one.profile_score_single(g).to_bits(),
            four.profile_score_single(g).to_bits()
        );
    }
}
