//! Property-based tests for the genetic operators.

use evolve::{Genome, VectorSet};
use gippr::Ipv;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ipv16() -> impl Strategy<Value = Ipv> {
    proptest::collection::vec(0u8..16, 17)
        .prop_map(|entries| Ipv::new(entries, 16).expect("in range"))
}

proptest! {
    /// Crossover children are always valid IPVs and every entry comes from
    /// one of the parents at the same index.
    #[test]
    fn crossover_mixes_parent_entries(a in ipv16(), b in ipv16(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let child = a.crossover(&b, &mut rng);
        prop_assert_eq!(child.assoc(), 16);
        for (i, &e) in child.entries().iter().enumerate() {
            prop_assert!(
                e == a.entries()[i] || e == b.entries()[i],
                "entry {i} = {e} from neither parent"
            );
        }
        // Single-point: a prefix from a, a suffix from b.
        let split = child
            .entries()
            .iter()
            .zip(a.entries())
            .take_while(|(c, pa)| c == pa)
            .count();
        for i in split..17 {
            prop_assert!(
                child.entries()[i] == b.entries()[i] || a.entries()[i] == b.entries()[i],
                "suffix entry {i} not from b"
            );
        }
    }

    /// Mutation at rate 0 is the identity; at rate 1 it changes at most
    /// one entry and the result stays valid.
    #[test]
    fn mutation_rates(v in ipv16(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frozen = v.clone();
        frozen.mutate(0.0, &mut rng);
        prop_assert_eq!(&frozen, &v);
        let mut mutated = v.clone();
        mutated.mutate(1.0, &mut rng);
        let diffs = mutated
            .entries()
            .iter()
            .zip(v.entries())
            .filter(|(m, o)| m != o)
            .count();
        prop_assert!(diffs <= 1);
        prop_assert!(mutated.entries().iter().all(|&e| e < 16));
    }

    /// VectorSet crossover preserves member count and validity; mutation
    /// touches at most one entry of one member.
    #[test]
    fn vector_set_operators(
        a_entries in proptest::collection::vec(proptest::collection::vec(0u8..16, 17), 4),
        b_entries in proptest::collection::vec(proptest::collection::vec(0u8..16, 17), 4),
        seed in any::<u64>(),
    ) {
        let mk = |vs: Vec<Vec<u8>>| {
            VectorSet::new(vs.into_iter().map(|e| Ipv::new(e, 16).unwrap()).collect())
        };
        let a = mk(a_entries);
        let b = mk(b_entries);
        let mut rng = StdRng::seed_from_u64(seed);
        let child = a.crossover(&b, &mut rng);
        prop_assert_eq!(child.len(), 4);
        let mut mutated = child.clone();
        mutated.mutate(1.0, &mut rng);
        let total_diffs: usize = mutated
            .vectors()
            .iter()
            .zip(child.vectors())
            .map(|(m, c)| {
                m.entries().iter().zip(c.entries()).filter(|(x, y)| x != y).count()
            })
            .sum();
        prop_assert!(total_diffs <= 1);
    }

    /// Sampled genomes are always valid, for both genome kinds.
    #[test]
    fn sampling_is_valid(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = <Ipv as Genome>::sample(16, &mut rng);
        prop_assert!(v.entries().iter().all(|&e| e < 16));
        let s = VectorSet::sample_n(4, 16, &mut rng);
        prop_assert_eq!(s.len(), 4);
    }
}
