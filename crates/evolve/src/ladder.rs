//! The multi-fidelity evaluation ladder (ROADMAP item 5).
//!
//! The paper's GA spends essentially all of its time replaying traces:
//! every genome of every generation pays a full multi-workload replay. The
//! ladder spends that budget where it matters by climbing four tiers,
//! cheapest first, and promoting only the most promising genomes:
//!
//! | tier | evaluator | cost |
//! |------|-----------|------|
//! | 0 pruned   | `sim-lint` viability (degeneracy analysis)     | free |
//! | 1 profile  | Mattson profile + reachability ([`FitnessContext::profile_score_single`](crate::FitnessContext::profile_score_single)) | free (no replay) |
//! | 2 sampled  | set-sampled replay ([`FitnessContext::fitness_single_sampled`](crate::FitnessContext::fitness_single_sampled)) | ~1/`every` of full |
//! | 3 full     | full replay (the existing fitness)             | full |
//!
//! Promotion is deterministic: genomes are ranked by (score descending,
//! encoding ascending), so equal scores break ties identically on every
//! host, at every shard count, and across checkpoint resumes. Every tier's
//! results are memoized under a fidelity-tagged key; elites therefore keep
//! their full-fidelity scores forever and re-climb the ladder for free.

use crate::fitness::FitnessContext;
use crate::ga::Genome;
use std::collections::HashMap;

/// The evaluation tier that produced a genome's selection score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fidelity {
    /// Statically non-viable; scored `-inf` without any evaluation.
    Pruned,
    /// Zero-replay profile heuristic.
    Profile,
    /// Set-sampled replay.
    Sampled,
    /// Full replay — the exact fitness.
    Full,
}

impl Fidelity {
    /// The memo-key tag byte for this tier.
    pub fn tag(self) -> u8 {
        match self {
            Fidelity::Pruned => 0,
            Fidelity::Profile => 1,
            Fidelity::Sampled => 2,
            Fidelity::Full => 3,
        }
    }
}

/// The memo key of `genome` at `fidelity`: one tag byte + the encoding.
/// Tags keep the tiers' values apart — a sampled estimate must never be
/// mistaken for a full fitness on a later lookup.
pub fn memo_key(fidelity: Fidelity, encoding: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(encoding.len() + 1);
    key.push(fidelity.tag());
    key.extend_from_slice(encoding);
    key
}

/// Promotion thresholds of the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderConfig {
    /// Fraction of viable genomes promoted to the set-sampled tier.
    pub sampled_frac: f64,
    /// Fraction of viable genomes promoted to full replay.
    pub full_frac: f64,
    /// Minimum genomes receiving full replay per generation; keep this at
    /// or above the GA's elitism so every potential elite has an exact
    /// score.
    pub min_full: usize,
}

impl LadderConfig {
    /// The default ladder: half the population graduates to the sampled
    /// tier, one in eight (but at least `min_full`) to full replay.
    pub fn balanced() -> Self {
        LadderConfig {
            sampled_frac: 0.5,
            full_frac: 0.125,
            min_full: 8,
        }
    }

    /// A degenerate ladder that full-replays every viable genome — the
    /// single-fidelity baseline, through the same code path.
    pub fn full_only() -> Self {
        LadderConfig {
            sampled_frac: 1.0,
            full_frac: 1.0,
            min_full: 0,
        }
    }

    /// Whether this ladder is the single-fidelity baseline (the cheap
    /// tiers are skipped entirely, not just promoted through).
    pub fn is_full_only(&self) -> bool {
        self.full_frac >= 1.0
    }
}

/// Cumulative evaluation accounting across generations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LadderStats {
    /// Fresh zero-replay profile scores computed.
    pub profile_evals: u64,
    /// Fresh set-sampled replays performed.
    pub sampled_evals: u64,
    /// Fresh full replays performed.
    pub full_evals: u64,
    /// Genomes pruned as statically non-viable.
    pub pruned: u64,
    /// Full replays the ladder avoided: viable genomes with no memoized
    /// full score that stopped below the full tier (a single-fidelity GA
    /// would have replayed every one of them).
    pub full_saved: u64,
}

impl LadderStats {
    /// Adds another accumulator's counts into this one.
    pub fn absorb(&mut self, other: &LadderStats) {
        self.profile_evals += other.profile_evals;
        self.sampled_evals += other.sampled_evals;
        self.full_evals += other.full_evals;
        self.pruned += other.pruned;
        self.full_saved += other.full_saved;
    }
}

/// One generation's ladder outcome.
#[derive(Debug, Clone)]
pub struct LadderOutcome {
    /// Per-genome selection score: the highest tier each genome reached.
    pub scores: Vec<f64>,
    /// The tier backing each score.
    pub tiers: Vec<Fidelity>,
}

/// Deterministic promotion rank: score descending, encoding ascending.
fn rank_desc(a: (f64, &[u8]), b: (f64, &[u8])) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.1.cmp(b.1))
}

fn promote_count(frac: f64, total: usize, floor: usize) -> usize {
    ((frac.clamp(0.0, 1.0) * total as f64).ceil() as usize)
        .max(floor)
        .min(total)
}

/// Scores `population` through the ladder.
///
/// The three closures are the tier evaluators (tier 1 through 3); each is
/// run on the shared worker pool via
/// [`FitnessContext::fitness_many`]. `memo` holds fidelity-tagged results
/// and is both read and extended — pass the same map across generations
/// (and through checkpoints) to keep elites free. `stats` accumulates
/// evaluation counts.
#[allow(clippy::too_many_arguments)]
pub fn evaluate<G, FP, FS, FF>(
    ctx: &FitnessContext,
    cfg: &LadderConfig,
    population: &[G],
    memo: &mut HashMap<Vec<u8>, f64>,
    stats: &mut LadderStats,
    profile_score: FP,
    sampled_fitness: FS,
    full_fitness: FF,
) -> LadderOutcome
where
    G: Genome,
    FP: Fn(&FitnessContext, &G) -> f64 + Sync,
    FS: Fn(&FitnessContext, &G) -> f64 + Sync,
    FF: Fn(&FitnessContext, &G) -> f64 + Sync,
{
    let n = population.len();
    let encs: Vec<Vec<u8>> = population.iter().map(Genome::encode).collect();
    let mut scores = vec![f64::NEG_INFINITY; n];
    let mut tiers = vec![Fidelity::Pruned; n];

    // Tier 0: memoized full scores short-circuit (elites and previously
    // pruned genomes alike); fresh non-viable genomes are sunk to -inf.
    let mut climbing: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        let full_key = memo_key(Fidelity::Full, &encs[i]);
        if let Some(&v) = memo.get(&full_key) {
            scores[i] = v;
            tiers[i] = if v == f64::NEG_INFINITY {
                Fidelity::Pruned
            } else {
                Fidelity::Full
            };
        } else if !population[i].is_viable() {
            memo.insert(full_key, f64::NEG_INFINITY);
            stats.pruned += 1;
        } else {
            climbing.push(i);
        }
    }

    let full_set: Vec<usize> = if cfg.is_full_only() {
        climbing.clone()
    } else {
        // Tier 1: profile-score every climber (memo makes repeats free).
        let t1 = run_tier(
            ctx,
            population,
            &encs,
            &climbing,
            Fidelity::Profile,
            memo,
            &profile_score,
        );
        stats.profile_evals += t1.fresh;
        let mut ranked = climbing.clone();
        ranked.sort_by(|&a, &b| rank_desc((t1.score(a), &encs[a]), (t1.score(b), &encs[b])));
        let n_full = promote_count(cfg.full_frac, ranked.len(), cfg.min_full);
        let n_sampled = promote_count(cfg.sampled_frac, ranked.len(), n_full);
        for &i in &ranked[n_sampled..] {
            scores[i] = t1.score(i);
            tiers[i] = Fidelity::Profile;
        }

        // Tier 2: set-sampled replay for the promoted slice.
        let sampled_set: Vec<usize> = ranked[..n_sampled].to_vec();
        let t2 = run_tier(
            ctx,
            population,
            &encs,
            &sampled_set,
            Fidelity::Sampled,
            memo,
            &sampled_fitness,
        );
        stats.sampled_evals += t2.fresh;
        let mut ranked2 = sampled_set;
        ranked2.sort_by(|&a, &b| rank_desc((t2.score(a), &encs[a]), (t2.score(b), &encs[b])));
        for &i in &ranked2[n_full.min(ranked2.len())..] {
            scores[i] = t2.score(i);
            tiers[i] = Fidelity::Sampled;
        }
        ranked2.truncate(n_full);
        ranked2
    };

    // Tier 3: full replay for the elite slice.
    let t3 = run_tier(
        ctx,
        population,
        &encs,
        &full_set,
        Fidelity::Full,
        memo,
        &full_fitness,
    );
    stats.full_evals += t3.fresh;
    for &i in &full_set {
        scores[i] = t3.score(i);
        tiers[i] = Fidelity::Full;
    }
    // Every climber that did not get a fresh full replay is one a
    // single-fidelity GA would have paid for.
    stats.full_saved += (climbing.len() as u64).saturating_sub(t3.fresh);

    LadderOutcome { scores, tiers }
}

/// One tier's scores over a set of population indices.
struct TierScores {
    by_index: HashMap<usize, f64>,
    fresh: u64,
}

impl TierScores {
    fn score(&self, i: usize) -> f64 {
        self.by_index[&i]
    }
}

fn run_tier<G, F>(
    ctx: &FitnessContext,
    population: &[G],
    encs: &[Vec<u8>],
    indices: &[usize],
    fidelity: Fidelity,
    memo: &mut HashMap<Vec<u8>, f64>,
    eval: &F,
) -> TierScores
where
    G: Genome,
    F: Fn(&FitnessContext, &G) -> f64 + Sync,
{
    let keys: Vec<Vec<u8>> = indices
        .iter()
        .map(|&i| memo_key(fidelity, &encs[i]))
        .collect();
    let fresh_pos: Vec<usize> = (0..indices.len())
        .filter(|&p| !memo.contains_key(&keys[p]))
        .collect();
    let fresh_genomes: Vec<G> = fresh_pos
        .iter()
        .map(|&p| population[indices[p]].clone())
        .collect();
    let values = ctx.fitness_many(&fresh_genomes, eval);
    for (&p, value) in fresh_pos.iter().zip(values) {
        memo.insert(keys[p].clone(), value);
    }
    let by_index = indices
        .iter()
        .zip(&keys)
        .map(|(&i, k)| (i, memo[k]))
        .collect();
    TierScores {
        by_index,
        fresh: fresh_pos.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessScale;
    use gippr::Ipv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use traces::spec2006::Spec2006;

    fn ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum],
            1,
            12_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    fn batch(n: usize, seed: u64) -> Vec<Ipv> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Ipv::random(16, &mut rng)).collect()
    }

    /// Synthetic tier evaluators that count invocations: the ladder's
    /// promotion arithmetic is testable without any replay.
    #[test]
    fn promotion_counts_follow_the_config() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ctx = ctx();
        let pop = batch(16, 3);
        let cfg = LadderConfig {
            sampled_frac: 0.5,
            full_frac: 0.25,
            min_full: 2,
        };
        let (c1, c2, c3) = (
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        );
        let mut memo = HashMap::new();
        let mut stats = LadderStats::default();
        let out = evaluate(
            &ctx,
            &cfg,
            &pop,
            &mut memo,
            &mut stats,
            |_c, g: &Ipv| {
                c1.fetch_add(1, Ordering::SeqCst);
                g.insertion() as f64
            },
            |_c, g| {
                c2.fetch_add(1, Ordering::SeqCst);
                g.insertion() as f64 * 2.0
            },
            |_c, g| {
                c3.fetch_add(1, Ordering::SeqCst);
                g.insertion() as f64 * 3.0
            },
        );
        let viable = pop.iter().filter(|g| g.is_viable()).count();
        let full = ((0.25 * viable as f64).ceil() as usize).max(2);
        assert_eq!(c1.load(Ordering::SeqCst), viable);
        assert_eq!(
            c2.load(Ordering::SeqCst),
            ((0.5 * viable as f64).ceil() as usize).max(full)
        );
        assert_eq!(c3.load(Ordering::SeqCst), full);
        assert_eq!(stats.full_evals, full as u64);
        assert_eq!(stats.full_saved, (viable - full) as u64);
        assert_eq!(
            out.tiers.iter().filter(|t| **t == Fidelity::Full).count(),
            full
        );
        // Full-tier scores are the full evaluator's values.
        for (i, g) in pop.iter().enumerate() {
            if out.tiers[i] == Fidelity::Full {
                assert_eq!(out.scores[i], g.insertion() as f64 * 3.0);
            }
        }
    }

    #[test]
    fn memo_makes_reevaluation_free_and_deterministic() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ctx = ctx();
        let pop = batch(12, 9);
        let cfg = LadderConfig::balanced();
        let evals = AtomicUsize::new(0);
        let mut memo = HashMap::new();
        let mut stats = LadderStats::default();
        let run = |memo: &mut HashMap<Vec<u8>, f64>, stats: &mut LadderStats| {
            evaluate(
                &ctx,
                &cfg,
                &pop,
                memo,
                stats,
                |_c, g: &Ipv| g.entries()[0] as f64,
                |_c, g| {
                    evals.fetch_add(1, Ordering::SeqCst);
                    g.entries()[1] as f64
                },
                |_c, g| {
                    evals.fetch_add(1, Ordering::SeqCst);
                    g.entries()[2] as f64
                },
            )
        };
        let first = run(&mut memo, &mut stats);
        // Re-evaluating the same population reaches a fixed point: full
        // memo hits leave the ladder, the rest keep climbing, and once
        // everyone holds a full score no evaluator runs at all.
        let second = run(&mut memo, &mut stats);
        let after_second = evals.load(Ordering::SeqCst);
        let third = run(&mut memo, &mut stats);
        assert_eq!(
            evals.load(Ordering::SeqCst),
            after_second,
            "a converged population must be fully memoized"
        );
        assert_eq!(second.scores, third.scores);
        assert_eq!(second.tiers, third.tiers);
        // Scores only ever move up the ladder, never back down.
        for (a, b) in first.tiers.iter().zip(&second.tiers) {
            assert!(b >= a, "fidelity is monotone across passes");
        }
    }

    #[test]
    fn full_only_ladder_is_the_single_fidelity_baseline() {
        let ctx = ctx();
        let pop = batch(10, 21);
        let mut memo = HashMap::new();
        let mut stats = LadderStats::default();
        let out = evaluate(
            &ctx,
            &LadderConfig::full_only(),
            &pop,
            &mut memo,
            &mut stats,
            |_c, _g: &Ipv| panic!("full-only ladder must skip the profile tier"),
            |_c, _g| panic!("full-only ladder must skip the sampled tier"),
            |_c, g| g.insertion() as f64,
        );
        assert_eq!(stats.profile_evals, 0);
        assert_eq!(stats.sampled_evals, 0);
        assert_eq!(stats.full_saved, 0);
        for (i, g) in pop.iter().enumerate() {
            if g.is_viable() {
                assert_eq!(out.scores[i], g.insertion() as f64);
                assert_eq!(out.tiers[i], Fidelity::Full);
            } else {
                assert_eq!(out.scores[i], f64::NEG_INFINITY);
                assert_eq!(out.tiers[i], Fidelity::Pruned);
            }
        }
    }

    #[test]
    fn nonviable_genomes_never_reach_any_tier() {
        let ctx = ctx();
        let mut raw: Vec<u8> = (0u8..16).collect();
        raw.push(15);
        let degenerate = Ipv::from_slice(&raw).unwrap();
        assert!(!degenerate.is_viable());
        let mut pop = batch(6, 33);
        pop.push(degenerate);
        let mut memo = HashMap::new();
        let mut stats = LadderStats::default();
        let out = evaluate(
            &ctx,
            &LadderConfig::balanced(),
            &pop,
            &mut memo,
            &mut stats,
            |_c, g: &Ipv| {
                assert!(g.is_viable());
                1.0
            },
            |_c, g| {
                assert!(g.is_viable());
                1.0
            },
            |_c, g| {
                assert!(g.is_viable());
                1.0
            },
        );
        assert_eq!(*out.scores.last().unwrap(), f64::NEG_INFINITY);
        assert_eq!(*out.tiers.last().unwrap(), Fidelity::Pruned);
        assert_eq!(stats.pruned, 1);
    }
}
