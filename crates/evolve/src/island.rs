//! The island-model GA: process-parallel evolution with crash-safe
//! migration (ROADMAP item 5, the paper's 200-CPU cluster shape on one
//! box).
//!
//! The population is sharded across `islands` independent workers, each
//! running its own selection/crossover loop over a distinct RNG stream.
//! Every [`IslandConfig::migration_every`] generations (an *epoch*), each
//! island publishes its top [`IslandConfig::migrants`] full-fidelity
//! elites to a **mailbox** file — written through
//! `sim_core::persist::atomic_write`, CRC-framed, fingerprinted by (run
//! config, sender, epoch) — and, at the start of the next epoch, injects
//! the previous epoch's migrants from its ring predecessor. Mailboxes are
//! never deleted during a run and readers poll until a valid file
//! appears, so islands need no rendezvous: a fast island runs ahead, a
//! crashed one resumes from its checkpoint and re-publishes byte-identical
//! mailboxes.
//!
//! Determinism: every decision (promotion ranks, migrant choice, tie
//! breaks) is a pure function of checkpointed state, so a worker killed at
//! *any* point — including mid-mailbox-write, the harshest case — resumes
//! bit-identically (see `harness/tests/islands.rs` for the process-level
//! proof under `sim-fault`).
//!
//! Fitness is evaluated through the multi-fidelity [`crate::ladder`]: the
//! island's best genome and per-generation history are always tracked at
//! **full** fidelity, so cheap-tier estimates steer selection but never
//! appear in reported results.

use crate::checkpoint::{self, Checkpointing, IslandLoaded, IslandState, ResumeState};
use crate::fitness::{FitnessContext, Substrate};
use crate::ga::{GaConfig, GaResult, Genome};
use crate::ladder::{self, Fidelity, LadderConfig, LadderStats};
use gippr::Ipv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Configuration of one island-model run, shared verbatim by the parent
/// driver and every worker process (the fingerprint pins it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IslandConfig {
    /// Worker islands in the migration ring.
    pub islands: usize,
    /// Generations per epoch: elites migrate at every epoch boundary.
    pub migration_every: usize,
    /// Elites exchanged per migration.
    pub migrants: usize,
    /// How long a reader waits for a neighbor's mailbox before giving up
    /// (the worker exits with an error and the parent retries it).
    pub mailbox_timeout: Duration,
    /// Per-island GA parameters. `seed` is the *run* seed; each island
    /// derives its own stream with [`IslandConfig::island_ga`].
    pub ga: GaConfig,
    /// Fitness-ladder promotion thresholds.
    pub ladder: LadderConfig,
}

impl IslandConfig {
    /// The GA configuration of island `island`: the shared parameters
    /// with a per-island decorrelated seed.
    pub fn island_ga(&self, island: usize) -> GaConfig {
        GaConfig {
            seed: self
                .ga
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(island as u64 + 1)),
            ..self.ga
        }
    }

    /// Run-level fingerprint over every parameter that shapes the search:
    /// checkpoints and mailboxes from a different topology, ladder, or GA
    /// configuration are never resumed or read.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.islands as u64).to_le_bytes());
        eat(&(self.migration_every as u64).to_le_bytes());
        eat(&(self.migrants as u64).to_le_bytes());
        eat(&self.ladder.sampled_frac.to_le_bytes());
        eat(&self.ladder.full_frac.to_le_bytes());
        eat(&(self.ladder.min_full as u64).to_le_bytes());
        eat(&(self.ga.initial_population as u64).to_le_bytes());
        eat(&(self.ga.population as u64).to_le_bytes());
        eat(&(self.ga.generations as u64).to_le_bytes());
        eat(&self.ga.mutation_rate.to_le_bytes());
        eat(&(self.ga.elitism as u64).to_le_bytes());
        eat(&(self.ga.tournament as u64).to_le_bytes());
        eat(&self.ga.seed.to_le_bytes());
        h
    }

    /// The mailbox file name island `island` writes at the end of `epoch`.
    pub fn mailbox_name(island: usize, epoch: usize) -> String {
        format!("mbx-island-{island}-epoch-{epoch}.mbx")
    }

    /// The fingerprint sealing one mailbox: run config + sender + epoch.
    pub fn mailbox_fingerprint(&self, island: usize, epoch: usize) -> u64 {
        self.fingerprint()
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(((island as u64) << 32) | epoch as u64)
    }

    /// The island `island` reads migrants from (its ring predecessor).
    pub fn neighbor(&self, island: usize) -> usize {
        (island + self.islands - 1) % self.islands
    }
}

/// One island's completed run.
#[derive(Debug, Clone)]
pub struct IslandOutcome<G> {
    /// The GA result. `history[g]` is the best **full-fidelity** fitness
    /// known after generation `g` (monotone nondecreasing).
    pub result: GaResult<G>,
    /// Ladder evaluation accounting, cumulative across resumes.
    pub stats: LadderStats,
    /// Wall-clock per generation executed *in this process* (empty on a
    /// short-circuited resume; never checkpointed — timing is reporting,
    /// not state).
    pub gen_wall_ms: Vec<u64>,
}

/// Waits for a valid mailbox at `path`. A missing, partial, or corrupt
/// file just means "not published yet" — atomic writes make a valid file
/// appear in one rename.
fn await_mailbox(path: &Path, fp: u64, timeout: Duration) -> std::io::Result<Vec<(Vec<u8>, f64)>> {
    let start = Instant::now();
    loop {
        if let Some(migrants) = checkpoint::load_mailbox(path, fp) {
            return Ok(migrants);
        }
        if start.elapsed() > timeout {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("no valid mailbox at {} after {timeout:?}", path.display()),
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs island `island` of `cfg` to completion (or resumes it), generic
/// over the genome and the three ladder-tier evaluators.
///
/// # Errors
///
/// Fails if a mailbox read times out or a mailbox write fails; checkpoint
/// write failures only degrade crash protection (with a warning), matching
/// [`crate::Ga`].
///
/// # Panics
///
/// Panics if `cfg.islands == 0` or `island >= cfg.islands`.
// One parameter per ladder tier plus the sampler: a builder would only
// obscure which evaluator feeds which tier.
#[allow(clippy::too_many_arguments)]
pub fn run_island<G, FP, FS, FF, S>(
    ctx: &FitnessContext,
    cfg: &IslandConfig,
    island: usize,
    ckpt: &Checkpointing,
    mailbox_dir: &Path,
    profile_score: FP,
    sampled_fitness: FS,
    full_fitness: FF,
    sample: S,
) -> std::io::Result<IslandOutcome<G>>
where
    G: Genome,
    FP: Fn(&FitnessContext, &G) -> f64 + Sync,
    FS: Fn(&FitnessContext, &G) -> f64 + Sync,
    FF: Fn(&FitnessContext, &G) -> f64 + Sync,
    S: Fn(usize, &mut StdRng) -> G,
{
    assert!(cfg.islands > 0, "at least one island");
    assert!(island < cfg.islands, "island {island} of {}", cfg.islands);
    let ga_cfg = cfg.island_ga(island);
    let mut lcfg = cfg.ladder;
    // Every generation must produce at least one full-fidelity score (the
    // island's best and its migrants are full-fidelity by contract).
    lcfg.min_full = lcfg.min_full.max(ga_cfg.elitism).max(1);
    let label = format!("island-{island}");
    let station = ckpt.stage_path(&label);
    let fp = checkpoint::fingerprint(&ga_cfg, &format!("{label}-{:016x}", cfg.fingerprint()));
    let assoc = ctx.geometry().ways();
    let generations = ga_cfg.generations.max(1);
    let migration_every = cfg.migration_every.max(1);
    let every = ckpt.every.max(1);

    let mut rng = StdRng::seed_from_u64(ga_cfg.seed);
    let mut population: Vec<G> = Vec::new();
    while population.len() < ga_cfg.initial_population.max(2) {
        population.push(sample(assoc, &mut rng));
    }
    let mut history: Vec<f64> = Vec::with_capacity(generations);
    let mut memo: HashMap<Vec<u8>, f64> = HashMap::new();
    let mut stats = LadderStats::default();
    let mut best: Option<(G, f64)> = None;
    let mut start_gen = 0;
    match checkpoint::load_island::<G>(&station, fp, assoc) {
        IslandLoaded::Final(result, stats) => {
            return Ok(IslandOutcome {
                result,
                stats,
                gen_wall_ms: Vec::new(),
            })
        }
        IslandLoaded::State(state) => {
            start_gen = state.ga.generation.min(generations - 1);
            rng = state.ga.rng;
            history = state.ga.history;
            population = state.ga.population;
            memo = state.ga.memo;
            best = state.best;
            stats = state.stats;
        }
        IslandLoaded::None => {}
    }

    let mut gen_wall_ms = Vec::new();
    for gen in start_gen..generations {
        let tick = Instant::now();
        if gen % every == 0 && gen != 0 {
            let snapshot = IslandState {
                ga: ResumeState {
                    generation: gen,
                    rng: rng.clone(),
                    history: history.clone(),
                    population: population.clone(),
                    memo: memo.clone(),
                },
                best: best.clone(),
                stats,
            };
            if let Err(e) = checkpoint::save_island_state(&station, fp, &snapshot) {
                eprintln!(
                    "evolve: failed to write island checkpoint {}: {e} (continuing unprotected)",
                    station.display()
                );
            }
        }

        // Epoch start: inject the ring predecessor's previous-epoch
        // elites over this island's weakest slots (the population tail is
        // freshly bred offspring; elites live at the front).
        if cfg.islands > 1 && gen != 0 && gen % migration_every == 0 {
            let epoch = gen / migration_every - 1;
            let neighbor = cfg.neighbor(island);
            let mbx = mailbox_dir.join(IslandConfig::mailbox_name(neighbor, epoch));
            let migrants = await_mailbox(
                &mbx,
                cfg.mailbox_fingerprint(neighbor, epoch),
                cfg.mailbox_timeout,
            )?;
            let keep = ga_cfg.elitism.min(population.len());
            let mut slot = population.len();
            for (enc, _fitness) in &migrants {
                if slot <= keep {
                    break;
                }
                if let Some(g) = G::decode(enc, assoc) {
                    slot -= 1;
                    population[slot] = g;
                }
            }
        }

        let out = ladder::evaluate(
            ctx,
            &lcfg,
            &population,
            &mut memo,
            &mut stats,
            &profile_score,
            &sampled_fitness,
            &full_fitness,
        );
        // Track the best at full fidelity only; cheap-tier estimates
        // steer selection but never become "the best genome".
        for (i, (&score, &tier)) in out.scores.iter().zip(&out.tiers).enumerate() {
            if tier == Fidelity::Full
                && score.is_finite()
                && best.as_ref().map_or(true, |(_, b)| score > *b)
            {
                best = Some((population[i].clone(), score));
            }
        }
        history.push(best.as_ref().map_or(f64::NEG_INFINITY, |(_, f)| *f));

        let mut scored: Vec<(G, f64)> = population
            .iter()
            .cloned()
            .zip(out.scores.iter().copied())
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        // Epoch end: publish this island's migrants — the best-known
        // genome plus the top full-fidelity genomes of this generation.
        if cfg.islands > 1 && (gen + 1) % migration_every == 0 {
            let epoch = gen / migration_every;
            let mut migrants: Vec<(Vec<u8>, f64)> = Vec::with_capacity(cfg.migrants);
            if let Some((g, f)) = &best {
                migrants.push((g.encode(), *f));
            }
            let mut full: Vec<(Vec<u8>, f64)> = population
                .iter()
                .zip(&out.tiers)
                .enumerate()
                .filter(|(_, (_, &tier))| tier == Fidelity::Full)
                .map(|(i, (g, _))| (g.encode(), out.scores[i]))
                .collect();
            full.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            for (enc, f) in full {
                if migrants.len() >= cfg.migrants.max(1) {
                    break;
                }
                if f.is_finite() && !migrants.iter().any(|(e, _)| *e == enc) {
                    migrants.push((enc, f));
                }
            }
            let mbx = mailbox_dir.join(IslandConfig::mailbox_name(island, epoch));
            checkpoint::save_mailbox(&mbx, cfg.mailbox_fingerprint(island, epoch), &migrants)?;
        }

        let next_size = ga_cfg.population.max(2);
        let mut next: Vec<G> = scored
            .iter()
            .take(ga_cfg.elitism.min(scored.len()))
            .map(|(g, _)| g.clone())
            .collect();
        while next.len() < next_size {
            let a = tournament_pick(&scored, ga_cfg.tournament, &mut rng);
            let b = tournament_pick(&scored, ga_cfg.tournament, &mut rng);
            let mut child = a.crossover(b, &mut rng);
            child.mutate(ga_cfg.mutation_rate, &mut rng);
            next.push(child);
        }
        population = next;
        gen_wall_ms.push(tick.elapsed().as_millis() as u64);
    }

    let (best_genome, best_fitness) = best.expect("min_full >= 1 full evaluation per generation");
    let result = GaResult {
        best: best_genome,
        best_fitness,
        history,
    };
    if let Err(e) = checkpoint::save_island_final(&station, fp, &result, &stats) {
        eprintln!(
            "evolve: failed to write island final marker {}: {e}",
            station.display()
        );
    }
    Ok(IslandOutcome {
        result,
        stats,
        gen_wall_ms,
    })
}

fn tournament_pick<'a, G, R: Rng>(scored: &'a [(G, f64)], size: usize, rng: &mut R) -> &'a G {
    let mut best: &(G, f64) = &scored[rng.gen_range(0..scored.len())];
    for _ in 1..size.max(1) {
        let c = &scored[rng.gen_range(0..scored.len())];
        if c.1 > best.1 {
            best = c;
        }
    }
    &best.0
}

/// [`run_island`] wired to single-IPV fitness on `substrate` through the
/// real ladder tiers: `sim-lint` viability → profile score → set-sampled
/// replay → full replay.
pub fn run_ipv_island(
    ctx: &FitnessContext,
    cfg: &IslandConfig,
    island: usize,
    ckpt: &Checkpointing,
    mailbox_dir: &Path,
    substrate: Substrate,
) -> std::io::Result<IslandOutcome<Ipv>> {
    run_island(
        ctx,
        cfg,
        island,
        ckpt,
        mailbox_dir,
        |c, g: &Ipv| c.profile_score_single(g),
        move |c, g: &Ipv| c.fitness_single_sampled(g, substrate),
        move |c, g: &Ipv| c.fitness_single(g, substrate),
        Ipv::sample,
    )
}

/// The default directory (under an output root) holding migration
/// mailboxes.
pub fn mailbox_dir(out: &Path) -> PathBuf {
    out.join("mailboxes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessScale;
    use traces::spec2006::Spec2006;

    fn ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum, Spec2006::CactusADM],
            1,
            15_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    fn tiny_cfg(islands: usize, seed: u64) -> IslandConfig {
        IslandConfig {
            islands,
            migration_every: 2,
            migrants: 2,
            mailbox_timeout: Duration::from_secs(30),
            ga: GaConfig {
                initial_population: 12,
                population: 8,
                generations: 5,
                mutation_rate: 0.2,
                elitism: 2,
                tournament: 2,
                seed,
            },
            ladder: LadderConfig {
                sampled_frac: 0.5,
                full_frac: 0.25,
                min_full: 2,
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("isl-{name}-{}", std::process::id()))
    }

    /// Synthetic deterministic tier evaluators: the sampled tier is a
    /// noisy-but-correlated version of full, as in the real ladder.
    fn synth_profile(_c: &FitnessContext, g: &Ipv) -> f64 {
        g.entries().iter().filter(|&&e| e > 0).count() as f64
    }
    fn synth_sampled(_c: &FitnessContext, g: &Ipv) -> f64 {
        synth_full(_c, g) + (g.entries()[0] as f64) / 16.0
    }
    fn synth_full(_c: &FitnessContext, g: &Ipv) -> f64 {
        g.insertion() as f64 - g.entries().iter().map(|&e| e as f64).sum::<f64>() / 64.0
    }

    fn run_ring(cfg: &IslandConfig, dir: &Path) -> Vec<IslandOutcome<Ipv>> {
        let ckpt = Checkpointing::in_dir(dir.join("checkpoints"));
        let mbx = dir.join("mailboxes");
        let ctx = ctx();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.islands)
                .map(|i| {
                    let ckpt = ckpt.clone();
                    let mbx = mbx.clone();
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        run_island(
                            &ctx,
                            cfg,
                            i,
                            &ckpt,
                            &mbx,
                            synth_profile,
                            synth_sampled,
                            synth_full,
                            Ipv::sample,
                        )
                        .expect("island completes")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
    }

    #[test]
    fn ring_runs_are_deterministic_and_history_is_monotone_full_fidelity() {
        let (da, db) = (tmp("det-a"), tmp("det-b"));
        for d in [&da, &db] {
            let _ = std::fs::remove_dir_all(d);
        }
        let cfg = tiny_cfg(3, 0xAB);
        let a = run_ring(&cfg, &da);
        let b = run_ring(&cfg, &db);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.best, y.result.best);
            assert_eq!(
                x.result.best_fitness.to_bits(),
                y.result.best_fitness.to_bits()
            );
            assert_eq!(x.result.history, y.result.history);
            assert_eq!(x.stats, y.stats);
            for w in x.result.history.windows(2) {
                assert!(w[1] >= w[0], "full-fidelity history is monotone");
            }
            // The reported best is the full evaluator's value for that
            // genome — never a cheap-tier estimate.
            assert_eq!(
                x.result.best_fitness,
                synth_full(&ctx(), &x.result.best),
                "best fitness must be full fidelity"
            );
        }
        assert!(
            a.iter().any(|o| o.stats.full_saved > 0),
            "the ladder must actually save full replays"
        );
        for d in [&da, &db] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn migration_spreads_a_seeded_elite_through_the_ring() {
        // Plant a strong genome via one island's RNG stream and verify the
        // ring's *other* islands end at least as fit as isolation would
        // leave them: migration can only add candidates (elites are kept).
        let (iso_dir, ring_dir) = (tmp("iso"), tmp("ring"));
        for d in [&iso_dir, &ring_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
        let ring_cfg = tiny_cfg(2, 0x51);
        let iso_cfg = IslandConfig {
            islands: 1,
            ..ring_cfg
        };
        // Isolation baseline for island 0 (same per-island seed derivation
        // would differ; compare against the ring run's own history).
        let ring = run_ring(&ring_cfg, &ring_dir);
        let iso = {
            let ckpt = Checkpointing::in_dir(iso_dir.join("checkpoints"));
            let c = ctx();
            run_island(
                &c,
                &iso_cfg,
                0,
                &ckpt,
                &iso_dir.join("mailboxes"),
                synth_profile,
                synth_sampled,
                synth_full,
                Ipv::sample,
            )
            .unwrap()
        };
        // Sanity rather than strict dominance (different seeds): both
        // complete, and the ring exchanged real mailboxes.
        assert_eq!(ring.len(), 2);
        assert!(iso.result.best_fitness.is_finite());
        let mbx0 = ring_dir
            .join("mailboxes")
            .join(IslandConfig::mailbox_name(0, 0));
        assert!(mbx0.exists(), "epoch-0 mailbox published");
        for d in [&iso_dir, &ring_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    /// The island-level differential: crash one island mid-run (after its
    /// epoch-0 mailbox write), resume it, and the final outcome must be
    /// bit-identical to an uninterrupted ring.
    #[test]
    fn island_crash_resume_is_bit_identical() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let (ref_dir, crash_dir) = (tmp("cr-ref"), tmp("cr-out"));
        for d in [&ref_dir, &crash_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
        let cfg = tiny_cfg(2, 0xF00D);
        let reference = run_ring(&cfg, &ref_dir);

        // Crashed run: island 1's full evaluator dies partway through a
        // mid-run generation; island 0 completes using island 1's already
        // published epoch-0 mailbox.
        let ckpt = Checkpointing::in_dir(crash_dir.join("checkpoints"));
        let mbx = crash_dir.join("mailboxes");
        let c = ctx();
        let island0 = {
            let (ckpt, mbx, c) = (ckpt.clone(), mbx.clone(), c.clone());
            std::thread::spawn(move || {
                run_island(
                    &c,
                    &cfg,
                    0,
                    &ckpt,
                    &mbx,
                    synth_profile,
                    synth_sampled,
                    synth_full,
                    Ipv::sample,
                )
                .expect("island 0 completes")
            })
        };
        // Crash on the first full evaluation *after* island 1 has
        // published its epoch-0 mailbox — i.e. partway through a later
        // generation, mid-migration from the ring's point of view.
        let own_epoch0 = mbx.join(IslandConfig::mailbox_name(1, 0));
        let armed = AtomicUsize::new(0);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            run_island(
                &c,
                &cfg,
                1,
                &ckpt,
                &mbx,
                synth_profile,
                synth_sampled,
                |cx: &FitnessContext, g: &Ipv| {
                    if own_epoch0.exists() && armed.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("injected island crash");
                    }
                    synth_full(cx, g)
                },
                Ipv::sample,
            )
        }));
        assert!(crashed.is_err(), "island 1 must actually crash");
        // Resume island 1 with the healthy evaluator.
        let resumed = run_island(
            &c,
            &cfg,
            1,
            &ckpt,
            &mbx,
            synth_profile,
            synth_sampled,
            synth_full,
            Ipv::sample,
        )
        .expect("resume completes");
        let island0 = island0.join().expect("island 0 thread");

        assert_eq!(island0.result.best, reference[0].result.best);
        assert_eq!(island0.result.history, reference[0].result.history);
        assert_eq!(resumed.result.best, reference[1].result.best);
        assert_eq!(
            resumed.result.best_fitness.to_bits(),
            reference[1].result.best_fitness.to_bits()
        );
        assert_eq!(resumed.result.history, reference[1].result.history);
        assert_eq!(resumed.stats, reference[1].stats);

        // A re-run short-circuits on the final marker without evaluating.
        let replayed = run_island(
            &c,
            &cfg,
            1,
            &ckpt,
            &mbx,
            |_c: &FitnessContext, _g: &Ipv| panic!("finished island must not re-evaluate"),
            |_c, _g| panic!("finished island must not re-evaluate"),
            |_c, _g| panic!("finished island must not re-evaluate"),
            Ipv::sample,
        )
        .unwrap();
        assert_eq!(replayed.result.best, reference[1].result.best);
        assert_eq!(replayed.stats, reference[1].stats);
        for d in [&ref_dir, &crash_dir] {
            let _ = std::fs::remove_dir_all(d);
        }
    }

    #[test]
    fn real_ladder_island_runs_end_to_end() {
        // One tiny island through the *real* tiers (profile, set-sampled,
        // full replay) — the integration smoke for run_ipv_island.
        let dir = tmp("real");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = IslandConfig {
            islands: 1,
            migration_every: 2,
            migrants: 1,
            mailbox_timeout: Duration::from_secs(5),
            ga: GaConfig {
                initial_population: 8,
                population: 6,
                generations: 2,
                mutation_rate: 0.1,
                elitism: 2,
                tournament: 2,
                seed: 3,
            },
            ladder: LadderConfig::balanced(),
        };
        let c = ctx();
        let ckpt = Checkpointing::in_dir(dir.join("checkpoints"));
        let out = run_ipv_island(&c, &cfg, 0, &ckpt, &dir.join("mailboxes"), Substrate::Plru)
            .expect("island completes");
        assert!(out.result.best_fitness.is_finite());
        // The reported fitness is the exact full-replay fitness.
        assert_eq!(
            out.result.best_fitness,
            c.fitness_single(&out.result.best, Substrate::Plru)
        );
        assert!(out.stats.full_evals > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
