//! The genetic algorithm (paper Section 4.2).
//!
//! "Individual IPVs are mated with crossover, i.e., elements `0..k` of one
//! vector and `k+1..16` of another vector are put into corresponding
//! positions of a new vector, where `k` is chosen randomly. For mutation,
//! for each new IPV, with a 5 % probability, a randomly chosen element of
//! the vector is replaced with a random integer between 0 and 15."
//!
//! The algorithm is generic over a [`Genome`], so the same machinery
//! evolves single IPVs (GIPPR) and dueling vector sets (2-/4-DGIPPR).

use crate::checkpoint::{self, Checkpointing, Loaded};
use crate::fitness::{FitnessContext, Substrate};
use gippr::Ipv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Fitness-memo size bound: above this the memo is pruned to the current
/// generation's keys. Purely a memory cap — pruning changes which genomes
/// are *recomputed*, never their (deterministic) fitness values.
const MEMO_CAP: usize = 1 << 17;

/// A searchable genome: random initialization, crossover, mutation.
pub trait Genome: Clone + Send + Sync + fmt::Display {
    /// Samples a uniformly random genome for a `assoc`-way cache.
    fn sample<R: Rng + ?Sized>(assoc: usize, rng: &mut R) -> Self;
    /// Single-point crossover with `other`.
    fn crossover<R: Rng + ?Sized>(&self, other: &Self, rng: &mut R) -> Self;
    /// Mutates in place: with probability `rate`, one element is replaced
    /// by a random value.
    fn mutate<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R);
    /// Whether the genome is worth simulating at all. The GA gives
    /// non-viable genomes `f64::NEG_INFINITY` fitness without spending a
    /// fitness evaluation (millions of simulated accesses) on them.
    fn is_viable(&self) -> bool {
        true
    }
    /// Serializes the genome for checkpoint files and as the fitness-memo
    /// key; two genomes encode equal iff they are behaviorally identical.
    fn encode(&self) -> Vec<u8>;
    /// Rebuilds a genome from [`Genome::encode`] bytes for an `assoc`-way
    /// cache; `None` (never a panic) for bytes that are not a valid
    /// genome, so corrupt checkpoints degrade to a restart.
    fn decode(bytes: &[u8], assoc: usize) -> Option<Self>;
}

impl Genome for Ipv {
    fn sample<R: Rng + ?Sized>(assoc: usize, rng: &mut R) -> Self {
        Ipv::random(assoc, rng)
    }

    fn crossover<R: Rng + ?Sized>(&self, other: &Self, rng: &mut R) -> Self {
        let k = rng.gen_range(0..=self.assoc());
        let entries: Vec<u8> = self.entries()[..=k]
            .iter()
            .chain(other.entries()[k + 1..].iter())
            .copied()
            .collect();
        Ipv::new(entries, self.assoc()).expect("crossover of valid parents is valid")
    }

    fn mutate<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) {
        if rng.gen_bool(rate) {
            let idx = rng.gen_range(0..=self.assoc());
            let value = rng.gen_range(0..self.assoc()) as u8;
            self.set_entry(idx, value)
                .expect("sampled value is in range");
        }
    }

    /// Degenerate vectors (paper footnote 1: pseudo-MRU unreachable, per
    /// the `sim-lint` static analyzer) cannot express a useful recency
    /// ordering, so their fitness is known without simulation.
    fn is_viable(&self) -> bool {
        !self.is_degenerate()
    }

    fn encode(&self) -> Vec<u8> {
        self.entries().to_vec()
    }

    fn decode(bytes: &[u8], assoc: usize) -> Option<Self> {
        if bytes.len() != assoc + 1 {
            return None;
        }
        Ipv::from_slice(bytes).ok()
    }
}

/// A dueling set of 2 or 4 vectors (the DGIPPR genome). Crossover mixes at
/// vector granularity plus one intra-vector split; mutation delegates to a
/// random member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorSet {
    vectors: Vec<Ipv>,
}

impl VectorSet {
    /// Wraps an explicit set of vectors.
    ///
    /// # Panics
    ///
    /// Panics unless there are 2 or 4 vectors.
    pub fn new(vectors: Vec<Ipv>) -> Self {
        assert!(
            vectors.len() == 2 || vectors.len() == 4,
            "vector sets have 2 or 4 members"
        );
        VectorSet { vectors }
    }

    /// The member vectors.
    pub fn vectors(&self) -> &[Ipv] {
        &self.vectors
    }

    /// Number of member vectors (2 or 4).
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the set is empty (never true; satisfies the is_empty lint).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Default member count used by [`Genome::sample`] (set before
    /// sampling via thread-local would be awkward; we sample pairs and let
    /// callers construct quads explicitly or via [`VectorSet::sample_n`]).
    pub fn sample_n<R: Rng + ?Sized>(n: usize, assoc: usize, rng: &mut R) -> Self {
        VectorSet::new((0..n).map(|_| Ipv::random(assoc, rng)).collect())
    }
}

impl fmt::Display for VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.vectors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl Genome for VectorSet {
    fn sample<R: Rng + ?Sized>(assoc: usize, rng: &mut R) -> Self {
        Self::sample_n(2, assoc, rng)
    }

    fn crossover<R: Rng + ?Sized>(&self, other: &Self, rng: &mut R) -> Self {
        debug_assert_eq!(self.vectors.len(), other.vectors.len());
        let vectors = self
            .vectors
            .iter()
            .zip(&other.vectors)
            .map(|(a, b)| match rng.gen_range(0..3) {
                0 => a.clone(),
                1 => b.clone(),
                _ => a.crossover(b, rng),
            })
            .collect();
        VectorSet { vectors }
    }

    fn mutate<R: Rng + ?Sized>(&mut self, rate: f64, rng: &mut R) {
        let idx = rng.gen_range(0..self.vectors.len());
        self.vectors[idx].mutate(rate, rng);
    }

    /// A dueling set is viable only if every member is: set-dueling
    /// dedicates real cache sets to each vector, so one degenerate member
    /// poisons the whole configuration.
    fn is_viable(&self) -> bool {
        self.vectors.iter().all(Genome::is_viable)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.vectors.len() as u8];
        for v in &self.vectors {
            out.extend_from_slice(v.entries());
        }
        out
    }

    fn decode(bytes: &[u8], assoc: usize) -> Option<Self> {
        let (&count, rest) = bytes.split_first()?;
        let count = count as usize;
        if !(count == 2 || count == 4) || rest.len() != count * (assoc + 1) {
            return None;
        }
        let vectors = rest
            .chunks(assoc + 1)
            .map(|chunk| Ipv::from_slice(chunk).ok())
            .collect::<Option<Vec<_>>>()?;
        Some(VectorSet { vectors })
    }
}

/// Genetic-algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// First-generation population (paper: 20 000).
    pub initial_population: usize,
    /// Population of subsequent generations (paper: 4 000).
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Per-offspring mutation probability (paper: 0.05).
    pub mutation_rate: f64,
    /// Best individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GaConfig {
    /// The paper's full-scale configuration (hours of CPU time).
    pub fn paper(seed: u64) -> Self {
        GaConfig {
            initial_population: 20_000,
            population: 4_000,
            generations: 50,
            mutation_rate: 0.05,
            elitism: 8,
            tournament: 4,
            seed,
        }
    }

    /// A laptop-scale configuration for tests and quick experiments.
    pub fn quick(seed: u64) -> Self {
        GaConfig {
            initial_population: 48,
            population: 24,
            generations: 8,
            mutation_rate: 0.05,
            elitism: 3,
            tournament: 3,
            seed,
        }
    }
}

/// The outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult<G> {
    /// The fittest genome found.
    pub best: G,
    /// Its fitness (mean speedup over LRU).
    pub best_fitness: f64,
    /// Best fitness per generation (monotone nondecreasing with elitism).
    pub history: Vec<f64>,
}

/// The genetic algorithm runner.
#[derive(Debug, Clone)]
pub struct Ga {
    config: GaConfig,
}

impl Ga {
    /// Creates a runner with `config`.
    pub fn new(config: GaConfig) -> Self {
        Ga { config }
    }

    /// Evolves a single IPV on `substrate` (GIPPR/GIPLR).
    pub fn run_single(&self, ctx: &FitnessContext, substrate: Substrate) -> GaResult<Ipv> {
        self.run_single_checkpointed(ctx, substrate, None)
    }

    /// [`run_single`](Ga::run_single) with optional crash-safe
    /// checkpointing under the given stage label.
    pub fn run_single_checkpointed(
        &self,
        ctx: &FitnessContext,
        substrate: Substrate,
        ckpt: Option<(&Checkpointing, &str)>,
    ) -> GaResult<Ipv> {
        self.run_seeded_checkpointed(
            ctx,
            Vec::new(),
            |ctx, g| ctx.fitness_single(g, substrate),
            Ipv::sample,
            ckpt,
        )
    }

    /// Evolves a dueling set of `n` vectors (2- or 4-DGIPPR). `seeds` may
    /// inject known-good sets (e.g. single-vector GA winners), matching the
    /// paper's use of first-stage vectors to seed the pgapack stage.
    pub fn run_set(
        &self,
        ctx: &FitnessContext,
        n: usize,
        seeds: Vec<VectorSet>,
    ) -> GaResult<VectorSet> {
        self.run_set_checkpointed(ctx, n, seeds, None)
    }

    /// [`run_set`](Ga::run_set) with optional crash-safe checkpointing
    /// under the given stage label.
    pub fn run_set_checkpointed(
        &self,
        ctx: &FitnessContext,
        n: usize,
        seeds: Vec<VectorSet>,
        ckpt: Option<(&Checkpointing, &str)>,
    ) -> GaResult<VectorSet> {
        self.run_seeded_checkpointed(
            ctx,
            seeds,
            |ctx, g: &VectorSet| ctx.fitness_set(g.vectors()),
            move |assoc, rng| VectorSet::sample_n(n, assoc, rng),
            ckpt,
        )
    }

    /// The paper's two-stage structure (Section 4.2): "we generate many
    /// such vectors through many runs in parallel … we then use these
    /// vectors to seed another genetic algorithm implemented in pgapack."
    ///
    /// Stage one runs `first_stage_runs` independent GAs from different
    /// seeds; stage two runs one final GA whose initial population is
    /// seeded with every stage-one winner.
    pub fn run_two_stage_single(
        &self,
        ctx: &FitnessContext,
        substrate: Substrate,
        first_stage_runs: usize,
    ) -> GaResult<Ipv> {
        self.run_two_stage_single_checkpointed(ctx, substrate, first_stage_runs, None)
    }

    /// [`run_two_stage_single`](Ga::run_two_stage_single) with optional
    /// crash-safe checkpointing: each stage-one island checkpoints under
    /// `<label>-s1-<i>` and the seeded final stage under `<label>-final`,
    /// so a crash anywhere in the multi-hour pipeline resumes at the
    /// interrupted stage (completed stages short-circuit off their final
    /// markers).
    pub fn run_two_stage_single_checkpointed(
        &self,
        ctx: &FitnessContext,
        substrate: Substrate,
        first_stage_runs: usize,
        ckpt: Option<(&Checkpointing, &str)>,
    ) -> GaResult<Ipv> {
        let winners: Vec<Ipv> = (0..first_stage_runs.max(1))
            .map(|i| {
                let cfg = GaConfig {
                    seed: self.config.seed.wrapping_add(1 + i as u64),
                    ..self.config
                };
                let label = ckpt.map(|(_, base)| format!("{base}-s1-{i}"));
                let stage = match (&ckpt, &label) {
                    (Some((c, _)), Some(label)) => Some((*c, label.as_str())),
                    _ => None,
                };
                Ga::new(cfg)
                    .run_single_checkpointed(ctx, substrate, stage)
                    .best
            })
            .collect();
        let label = ckpt.map(|(_, base)| format!("{base}-final"));
        let stage = match (&ckpt, &label) {
            (Some((c, _)), Some(label)) => Some((*c, label.as_str())),
            _ => None,
        };
        self.run_seeded_checkpointed(
            ctx,
            winners,
            |c, g| c.fitness_single(g, substrate),
            Ipv::sample,
            stage,
        )
    }

    /// The generic GA loop with injected seed genomes.
    pub fn run_seeded<G, F, S>(
        &self,
        ctx: &FitnessContext,
        seeds: Vec<G>,
        eval: F,
        sample: S,
    ) -> GaResult<G>
    where
        G: Genome,
        F: Fn(&FitnessContext, &G) -> f64 + Sync,
        S: Fn(usize, &mut StdRng) -> G,
    {
        self.run_seeded_checkpointed(ctx, seeds, eval, sample, None)
    }

    /// [`run_seeded`](Ga::run_seeded) with optional crash-safe
    /// checkpointing. When `ckpt` is set, the complete loop state
    /// (generation, population, RNG state, history, fitness memo) is
    /// snapshotted through `sim_core::persist::atomic_write` every
    /// [`Checkpointing::every`] generations, and an existing snapshot for
    /// the same configuration and stage label is resumed **bit-identically**:
    /// the result is byte-for-byte the one an uninterrupted run produces
    /// (see the differential test). A completed stage writes a final
    /// marker that short-circuits re-runs; an unusable snapshot restarts
    /// the stage with a warning.
    pub fn run_seeded_checkpointed<G, F, S>(
        &self,
        ctx: &FitnessContext,
        seeds: Vec<G>,
        eval: F,
        sample: S,
        ckpt: Option<(&Checkpointing, &str)>,
    ) -> GaResult<G>
    where
        G: Genome,
        F: Fn(&FitnessContext, &G) -> f64 + Sync,
        S: Fn(usize, &mut StdRng) -> G,
    {
        let cfg = &self.config;
        let assoc = ctx.geometry().ways();
        let generations = cfg.generations.max(1);
        let station = ckpt.map(|(c, label)| {
            (
                c.stage_path(label),
                checkpoint::fingerprint(cfg, label),
                c.every.max(1),
            )
        });

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut population: Vec<G> = seeds;
        population.truncate(cfg.initial_population);
        while population.len() < cfg.initial_population.max(2) {
            population.push(sample(assoc, &mut rng));
        }
        let mut history = Vec::with_capacity(generations);
        // Fitness memo keyed by genome encoding: elites (and any
        // re-discovered genome) skip their replays on later generations,
        // and a resumed run inherits the interrupted run's evaluations.
        let mut memo: HashMap<Vec<u8>, f64> = HashMap::new();
        let mut start_gen = 0;
        if let Some((path, fp, _)) = &station {
            match checkpoint::load::<G>(path, *fp, assoc) {
                Loaded::Final(result) => return result,
                Loaded::State(state) => {
                    start_gen = state.generation.min(generations - 1);
                    rng = state.rng;
                    history = state.history;
                    population = state.population;
                    memo = state.memo;
                }
                Loaded::None => {}
            }
        }

        let mut scored: Vec<(G, f64)> = Vec::new();
        for gen in start_gen..generations {
            if let Some((path, fp, every)) = &station {
                if gen % every == 0 && gen != 0 {
                    if let Err(e) =
                        checkpoint::save_state(path, *fp, gen, &rng, &history, &population, &memo)
                    {
                        eprintln!(
                            "evolve: failed to write checkpoint {}: {e} (continuing unprotected)",
                            path.display()
                        );
                    }
                }
            }
            // Static viability pruning: degenerate genomes are sunk to
            // -inf without reaching `eval`, saving a full trace replay per
            // pruned candidate. They still participate in selection (and
            // lose every tournament to any finite-fitness rival).
            let viable_eval = |c: &FitnessContext, g: &G| {
                if g.is_viable() {
                    eval(c, g)
                } else {
                    f64::NEG_INFINITY
                }
            };
            let keys: Vec<Vec<u8>> = population.iter().map(Genome::encode).collect();
            let fresh_idx: Vec<usize> = (0..population.len())
                .filter(|&i| !memo.contains_key(&keys[i]))
                .collect();
            let fresh: Vec<G> = fresh_idx.iter().map(|&i| population[i].clone()).collect();
            let fresh_fitness = ctx.fitness_many(&fresh, viable_eval);
            for (&i, value) in fresh_idx.iter().zip(fresh_fitness) {
                memo.insert(keys[i].clone(), value);
            }
            let fitness: Vec<f64> = keys.iter().map(|k| memo[k]).collect();
            if memo.len() > MEMO_CAP {
                let keep: std::collections::HashSet<&Vec<u8>> = keys.iter().collect();
                memo.retain(|k, _| keep.contains(k));
            }
            scored = population.iter().cloned().zip(fitness).collect();
            // Descending by fitness; NaN-safe (NaN sinks to the bottom).
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            history.push(scored[0].1);

            let next_size = cfg.population.max(2);
            let mut next: Vec<G> = scored
                .iter()
                .take(cfg.elitism.min(scored.len()))
                .map(|(g, _)| g.clone())
                .collect();
            while next.len() < next_size {
                let a = tournament_pick(&scored, cfg.tournament, &mut rng);
                let b = tournament_pick(&scored, cfg.tournament, &mut rng);
                let mut child = a.crossover(b, &mut rng);
                child.mutate(cfg.mutation_rate, &mut rng);
                next.push(child);
            }
            population = next;
        }
        let (best, best_fitness) = scored.swap_remove(0);
        let result = GaResult {
            best,
            best_fitness,
            history,
        };
        if let Some((path, fp, _)) = &station {
            if let Err(e) = checkpoint::save_final(path, *fp, &result) {
                eprintln!(
                    "evolve: failed to write final checkpoint {}: {e}",
                    path.display()
                );
            }
        }
        result
    }
}

fn tournament_pick<'a, G, R: Rng>(scored: &'a [(G, f64)], size: usize, rng: &mut R) -> &'a G {
    let mut best: &(G, f64) = &scored[rng.gen_range(0..scored.len())];
    for _ in 1..size.max(1) {
        let c = &scored[rng.gen_range(0..scored.len())];
        if c.1 > best.1 {
            best = c;
        }
    }
    &best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessScale;
    use traces::spec2006::Spec2006;

    fn ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum, Spec2006::CactusADM],
            1,
            15_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    /// The GA must prune statically degenerate genomes *before* fitness
    /// evaluation: a seeded degenerate candidate never reaches the eval
    /// closure, gets `-inf`, and cannot win.
    #[test]
    fn degenerate_seeds_are_pruned_before_fitness_evaluation() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // Identity promotions with insertion at the victim position: no
        // event ever moves any block, so pseudo-MRU is unreachable — the
        // paper's footnote-1 degeneracy, caught by the sim-lint analyzer.
        let mut raw: Vec<u8> = (0u8..16).collect();
        raw.push(15);
        let degenerate = Ipv::from_slice(&raw).unwrap();
        assert!(degenerate.is_degenerate());
        assert!(!degenerate.is_viable());

        let evaluations = AtomicUsize::new(0);
        let degenerate_evaluations = AtomicUsize::new(0);
        let cfg = GaConfig {
            initial_population: 16,
            population: 8,
            generations: 3,
            mutation_rate: 0.05,
            elitism: 2,
            tournament: 2,
            seed: 7,
        };
        let result = Ga::new(cfg).run_seeded(
            &ctx(),
            vec![degenerate, Ipv::lru(16)],
            |_c, g: &Ipv| {
                evaluations.fetch_add(1, Ordering::Relaxed);
                if g.is_degenerate() {
                    degenerate_evaluations.fetch_add(1, Ordering::Relaxed);
                }
                // Synthetic fitness (no simulation): prefer MRU insertion.
                -(g.insertion() as f64)
            },
            Ipv::sample,
        );

        assert_eq!(
            degenerate_evaluations.load(Ordering::Relaxed),
            0,
            "degenerate genomes must be sunk without a fitness evaluation"
        );
        assert!(
            evaluations.load(Ordering::Relaxed) > 0,
            "viable genomes still get evaluated"
        );
        assert!(!result.best.is_degenerate(), "a pruned genome cannot win");
    }

    #[test]
    fn crossover_takes_prefix_and_suffix() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Ipv::lru(16); // all zeros
        let b = Ipv::lru_insertion(16); // zeros + final 15
        for _ in 0..50 {
            let child = a.crossover(&b, &mut rng);
            // Child must be all zeros except possibly the last entry.
            assert!(child.entries()[..16].iter().all(|&e| e == 0));
        }
    }

    #[test]
    fn mutation_changes_at_most_one_entry() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let mut v = Ipv::lru(16);
            v.mutate(1.0, &mut rng); // force mutation
            let diffs = v.entries().iter().filter(|&&e| e != 0).count();
            assert!(diffs <= 1);
        }
    }

    #[test]
    fn ga_improves_over_random_start() {
        let ctx = ctx();
        let ga = Ga::new(GaConfig {
            generations: 5,
            ..GaConfig::quick(11)
        });
        let result = ga.run_single(&ctx, Substrate::Plru);
        assert!(
            result.best_fitness >= *result.history.first().unwrap(),
            "final {} < first {}",
            result.best_fitness,
            result.history.first().unwrap()
        );
        // On this streaming-heavy pair, something beats LRU.
        assert!(result.best_fitness > 1.0, "fitness {}", result.best_fitness);
    }

    #[test]
    fn ga_history_is_monotone_with_elitism() {
        let ctx = ctx();
        let ga = Ga::new(GaConfig::quick(7));
        let result = ga.run_single(&ctx, Substrate::Plru);
        for w in result.history.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "elitism never loses the best: {:?}",
                result.history
            );
        }
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let ctx = ctx();
        let a = Ga::new(GaConfig::quick(42)).run_single(&ctx, Substrate::Plru);
        let b = Ga::new(GaConfig::quick(42)).run_single(&ctx, Substrate::Plru);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn vector_set_ga_runs() {
        let ctx = ctx();
        let ga = Ga::new(GaConfig {
            generations: 3,
            ..GaConfig::quick(9)
        });
        let seeds = vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())];
        let result = ga.run_set(&ctx, 2, seeds);
        assert_eq!(result.best.len(), 2);
        assert!(result.best_fitness > 0.9);
    }

    #[test]
    fn seeded_genomes_survive_if_fit() {
        // Seeding with LIP on pure streaming should keep fitness at least
        // LIP's from generation zero.
        let ctx = FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum],
            1,
            15_000,
            FitnessScale {
                shift: 6,
                threads: 1,
            },
        );
        let lip_fitness = ctx.fitness_single(&Ipv::lru_insertion(16), Substrate::Plru);
        let ga = Ga::new(GaConfig {
            generations: 2,
            ..GaConfig::quick(1)
        });
        let result = ga.run_seeded(
            &ctx,
            vec![Ipv::lru_insertion(16)],
            |c, g| c.fitness_single(g, Substrate::Plru),
            Ipv::sample,
        );
        assert!(result.best_fitness >= lip_fitness - 1e-12);
    }

    #[test]
    fn two_stage_at_least_matches_best_first_stage_winner() {
        let ctx = ctx();
        let cfg = GaConfig {
            generations: 2,
            ..GaConfig::quick(31)
        };
        let ga = Ga::new(cfg);
        // Recompute the stage-one winners exactly as the two-stage run does.
        let stage1_best = (0..3u64)
            .map(|i| {
                let c = GaConfig {
                    seed: cfg.seed.wrapping_add(1 + i),
                    ..cfg
                };
                Ga::new(c).run_single(&ctx, Substrate::Plru).best_fitness
            })
            .fold(f64::MIN, f64::max);
        let two_stage = ga.run_two_stage_single(&ctx, Substrate::Plru, 3);
        assert!(
            two_stage.best_fitness >= stage1_best - 1e-12,
            "seeding cannot lose fitness: {} vs {stage1_best}",
            two_stage.best_fitness
        );
    }

    #[test]
    #[should_panic(expected = "2 or 4")]
    fn vector_set_rejects_odd_sizes() {
        let _ = VectorSet::new(vec![Ipv::lru(16)]);
    }

    #[test]
    fn genome_encoding_roundtrips() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let ipv = Ipv::random(16, &mut rng);
            assert_eq!(Ipv::decode(&ipv.encode(), 16), Some(ipv.clone()));
            let set = VectorSet::sample_n(4, 16, &mut rng);
            assert_eq!(VectorSet::decode(&set.encode(), 16), Some(set));
        }
        assert_eq!(Ipv::decode(&[0u8; 5], 16), None, "wrong length rejected");
        assert_eq!(VectorSet::decode(&[3u8, 0, 0], 16), None, "bad count");
        assert_eq!(VectorSet::decode(&[], 16), None, "empty rejected");
    }

    /// The tentpole's differential guarantee: a GA run interrupted
    /// mid-generation and resumed from its checkpoint produces the
    /// *bit-identical* result of an uninterrupted run — same best genome,
    /// same fitness bits, same per-generation history.
    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        use crate::checkpoint::Checkpointing;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        let ctx = ctx();
        let cfg = GaConfig {
            initial_population: 14,
            population: 10,
            generations: 6,
            mutation_rate: 0.2,
            elitism: 2,
            tournament: 2,
            seed: 0xC0FFEE,
        };
        // Synthetic deterministic fitness (no simulation) keeps the test
        // fast; any pure function of the genome works.
        let synth = |_c: &FitnessContext, g: &Ipv| {
            let shape: f64 = g.entries().iter().map(|&e| e as f64).sum();
            g.insertion() as f64 - shape / 64.0
        };
        let reference = Ga::new(cfg).run_seeded(&ctx, Vec::new(), synth, Ipv::sample);

        let dir = std::env::temp_dir().join(format!("ga-diff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = Checkpointing::in_dir(&dir);

        // Interrupted run: the fitness function itself dies partway
        // through a mid-run generation (the worker pool surfaces the
        // panic after draining, exactly like a crashed experiment).
        let calls = AtomicUsize::new(0);
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            Ga::new(cfg).run_seeded_checkpointed(
                &ctx,
                Vec::new(),
                |c: &FitnessContext, g: &Ipv| {
                    if calls.fetch_add(1, Ordering::SeqCst) == 30 {
                        panic!("injected crash mid-generation");
                    }
                    synth(c, g)
                },
                Ipv::sample,
                Some((&ckpt, "diff")),
            )
        }));
        assert!(crashed.is_err(), "the interrupted run must actually crash");
        assert!(
            calls.load(Ordering::SeqCst) > cfg.initial_population,
            "crash must land beyond generation 0 for the resume to matter"
        );

        // Resume with the healthy fitness function.
        let resumed = Ga::new(cfg).run_seeded_checkpointed(
            &ctx,
            Vec::new(),
            synth,
            Ipv::sample,
            Some((&ckpt, "diff")),
        );
        assert_eq!(resumed.best, reference.best);
        assert_eq!(
            resumed.best_fitness.to_bits(),
            reference.best_fitness.to_bits()
        );
        assert_eq!(resumed.history, reference.history);

        // A third run short-circuits on the final marker without a single
        // fitness evaluation.
        let replayed = Ga::new(cfg).run_seeded_checkpointed(
            &ctx,
            Vec::new(),
            |_c: &FitnessContext, _g: &Ipv| panic!("a finished stage must not re-evaluate"),
            Ipv::sample,
            Some((&ckpt, "diff")),
        );
        assert_eq!(replayed.best, reference.best);
        assert_eq!(replayed.history, reference.history);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
