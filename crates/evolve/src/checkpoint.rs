//! GA checkpointing: crash-safe snapshots of an in-progress evolution.
//!
//! The paper's full-scale GA is hours of CPU time (20 000 initial
//! candidates, 50 generations, 29 workloads each); losing a run to a crash
//! at generation 49 is not acceptable. A [`Checkpointing`] policy makes
//! [`crate::Ga`] snapshot its complete loop state — generation index,
//! population, RNG state, best-fitness history, and the fitness memo —
//! every `every` generations through `sim_core::persist::atomic_write`,
//! and load the newest snapshot on the next run. Because the snapshot is
//! taken at the top of a generation and includes the RNG's internal state,
//! a resumed run replays the exact random stream of an uninterrupted one:
//! resumption is bit-identical, not merely "close" (proven by a
//! differential test in `ga.rs`).
//!
//! # File format (`PLRUGAC1`)
//!
//! ```text
//! magic            8 B   "PLRUGAC1"
//! version          u32   1
//! fingerprint      u64   FNV-1a over the GaConfig + stage label
//! status           u8    0 = in-progress state, 1 = final result,
//!                        2 = island state, 3 = migration mailbox,
//!                        4 = island final
//! -- status 0 --
//! generation       u32
//! rng state        4 × u64
//! history          u32 count + count × f64
//! population       u32 count + count × (u32 len + genome bytes)
//! memo             u32 count + count × (u32 len + key bytes + f64)
//! -- status 1 --
//! best             u32 len + genome bytes
//! best fitness     f64
//! history          u32 count + count × f64
//! -- status 2 --
//! status-0 body, then:
//! best flag        u8    0 = no full-fidelity best yet, 1 = present
//! best             u32 len + genome bytes      (flag 1 only)
//! best fitness     f64                         (flag 1 only)
//! ladder stats     5 × u64
//! -- status 3 --
//! migrants         u32 count + count × (u32 len + genome bytes + f64)
//! -- status 4 --
//! status-1 body, then ladder stats (5 × u64)
//! -- all --
//! crc32            u32   over everything after the magic
//! ```
//!
//! Genome bytes come from [`crate::Genome::encode`]. All integers are
//! little-endian. A checkpoint that fails *any* validation — magic,
//! version, CRC, fingerprint, or genome decode — is ignored with a warning
//! and the stage restarts from scratch: a corrupt checkpoint can cost
//! recomputation, never correctness.

use crate::ga::{GaConfig, GaResult, Genome};
use crate::ladder::LadderStats;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use traces::format::Crc32;

const MAGIC: &[u8; 8] = b"PLRUGAC1";
const VERSION: u32 = 1;

/// Where and how often a GA run checkpoints. Each stage of a multi-stage
/// run (the paper's stage-1 islands, the seeded final stage, each duel
/// size) gets its own file under `dir`, named by its stage label.
#[derive(Debug, Clone)]
pub struct Checkpointing {
    /// Directory holding one checkpoint file per stage.
    pub dir: PathBuf,
    /// Snapshot every `every` generations (clamped to at least 1).
    pub every: usize,
}

impl Checkpointing {
    /// Checkpoints under `dir` every generation.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Checkpointing {
            dir: dir.into(),
            every: 1,
        }
    }

    /// The checkpoint file for the stage labeled `label`.
    pub fn stage_path(&self, label: &str) -> PathBuf {
        self.dir.join(format!("{label}.ckpt"))
    }

    /// Removes every checkpoint under `dir` (a non-resuming run starts
    /// clean so stale snapshots from an earlier configuration are never
    /// picked up).
    pub fn clear(&self) {
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let is_ckpt = path.extension().is_some_and(|e| e == "ckpt" || e == "tmp");
                if is_ckpt {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// The complete loop state of a GA run at the top of a generation.
pub(crate) struct ResumeState<G> {
    pub generation: usize,
    pub rng: StdRng,
    pub history: Vec<f64>,
    pub population: Vec<G>,
    pub memo: HashMap<Vec<u8>, f64>,
}

/// What a checkpoint file held.
pub(crate) enum Loaded<G> {
    /// No usable checkpoint (absent, corrupt, or different config).
    None,
    /// An in-progress run to resume.
    State(ResumeState<G>),
    /// The stage already finished; its result short-circuits the run.
    Final(GaResult<G>),
}

/// Stage fingerprint: a checkpoint is only resumable by the exact GA
/// configuration (and stage) that wrote it.
pub(crate) fn fingerprint(config: &GaConfig, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(config.initial_population as u64).to_le_bytes());
    eat(&(config.population as u64).to_le_bytes());
    eat(&(config.generations as u64).to_le_bytes());
    eat(&config.mutation_rate.to_le_bytes());
    eat(&(config.elitism as u64).to_le_bytes());
    eat(&(config.tournament as u64).to_le_bytes());
    eat(&config.seed.to_le_bytes());
    eat(label.as_bytes());
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: MAGIC.to_vec(),
        }
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    fn finish(mut self) -> Vec<u8> {
        let mut crc = Crc32::new();
        crc.update(&self.buf[MAGIC.len()..]);
        let crc = crc.finish();
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
}

/// Serializes and atomically persists an in-progress snapshot (taken at
/// the top of `generation`, before its fitness evaluation).
pub(crate) fn save_state<G: Genome>(
    path: &Path,
    fp: u64,
    generation: usize,
    rng: &StdRng,
    history: &[f64],
    population: &[G],
    memo: &HashMap<Vec<u8>, f64>,
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.u32(VERSION);
    w.u64(fp);
    w.buf.push(0); // status: in-progress
    write_state_body(&mut w, generation, rng, history, population, memo);
    sim_core::persist::atomic_write(path, &w.finish())
}

/// The status-0 body shared by plain GA states and island states.
fn write_state_body<G: Genome>(
    w: &mut Writer,
    generation: usize,
    rng: &StdRng,
    history: &[f64],
    population: &[G],
    memo: &HashMap<Vec<u8>, f64>,
) {
    w.u32(generation as u32);
    for word in rng.state() {
        w.u64(word);
    }
    w.u32(history.len() as u32);
    for &h in history {
        w.f64(h);
    }
    w.u32(population.len() as u32);
    for g in population {
        w.bytes(&g.encode());
    }
    // Deterministic memo order so identical states write identical bytes.
    let mut entries: Vec<(&Vec<u8>, &f64)> = memo.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.u32(entries.len() as u32);
    for (key, &value) in entries {
        w.bytes(key);
        w.f64(value);
    }
}

/// Serializes and atomically persists a finished stage's result, so a
/// later resume short-circuits the whole stage.
pub(crate) fn save_final<G: Genome>(
    path: &Path,
    fp: u64,
    result: &GaResult<G>,
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.u32(VERSION);
    w.u64(fp);
    w.buf.push(1); // status: final
    w.bytes(&result.best.encode());
    w.f64(result.best_fitness);
    w.u32(result.history.len() as u32);
    for &h in &result.history {
        w.f64(h);
    }
    sim_core::persist::atomic_write(path, &w.finish())
}

/// Loads whatever `path` holds, validating magic, version, CRC, and the
/// stage fingerprint. Every failure degrades to [`Loaded::None`].
pub(crate) fn load<G: Genome>(path: &Path, fp: u64, assoc: usize) -> Loaded<G> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(_) => return Loaded::None,
    };
    match parse(&buf, fp, assoc) {
        Some(loaded) => loaded,
        None => {
            eprintln!(
                "evolve: ignoring unusable checkpoint {} (corrupt or from a \
                 different configuration); restarting the stage",
                path.display()
            );
            Loaded::None
        }
    }
}

/// Validates the container (magic, CRC, version, fingerprint) and returns
/// the status byte plus a reader positioned at the status-specific body.
fn open<'a>(buf: &'a [u8], fp: u64) -> Option<(u8, Reader<'a>)> {
    if buf.len() < MAGIC.len() + 4 || &buf[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body = &buf[MAGIC.len()..buf.len() - 4];
    let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().ok()?);
    let mut crc = Crc32::new();
    crc.update(body);
    if crc.finish() != stored_crc {
        return None;
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.u32()? != VERSION || r.u64()? != fp {
        return None;
    }
    let status = r.u8()?;
    Some((status, r))
}

fn parse<G: Genome>(buf: &[u8], fp: u64, assoc: usize) -> Option<Loaded<G>> {
    let (status, mut r) = open(buf, fp)?;
    match status {
        0 => Some(Loaded::State(read_state_body(&mut r, assoc)?)),
        1 => Some(Loaded::Final(read_final_body(&mut r, assoc)?)),
        _ => None,
    }
}

fn read_state_body<G: Genome>(r: &mut Reader<'_>, assoc: usize) -> Option<ResumeState<G>> {
    let generation = r.u32()? as usize;
    let rng = StdRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
    let history = (0..r.u32()?).map(|_| r.f64()).collect::<Option<Vec<_>>>()?;
    let population = (0..r.u32()?)
        .map(|_| G::decode(r.bytes()?, assoc))
        .collect::<Option<Vec<_>>>()?;
    let memo = (0..r.u32()?)
        .map(|_| Some((r.bytes()?.to_vec(), r.f64()?)))
        .collect::<Option<HashMap<_, _>>>()?;
    Some(ResumeState {
        generation,
        rng,
        history,
        population,
        memo,
    })
}

fn read_final_body<G: Genome>(r: &mut Reader<'_>, assoc: usize) -> Option<GaResult<G>> {
    let best = G::decode(r.bytes()?, assoc)?;
    let best_fitness = r.f64()?;
    let history = (0..r.u32()?).map(|_| r.f64()).collect::<Option<Vec<_>>>()?;
    Some(GaResult {
        best,
        best_fitness,
        history,
    })
}

fn write_stats(w: &mut Writer, stats: &LadderStats) {
    w.u64(stats.profile_evals);
    w.u64(stats.sampled_evals);
    w.u64(stats.full_evals);
    w.u64(stats.pruned);
    w.u64(stats.full_saved);
}

fn read_stats(r: &mut Reader<'_>) -> Option<LadderStats> {
    Some(LadderStats {
        profile_evals: r.u64()?,
        sampled_evals: r.u64()?,
        full_evals: r.u64()?,
        pruned: r.u64()?,
        full_saved: r.u64()?,
    })
}

/// An island worker's loop state: the plain GA state plus the running
/// full-fidelity best and the ladder's evaluation accounting.
pub(crate) struct IslandState<G> {
    pub ga: ResumeState<G>,
    /// Best full-fidelity genome seen so far (None before the first
    /// generation completes).
    pub best: Option<(G, f64)>,
    pub stats: LadderStats,
}

/// What an island checkpoint file held.
pub(crate) enum IslandLoaded<G> {
    /// No usable checkpoint (absent, corrupt, or different config).
    None,
    /// An in-progress island to resume.
    State(IslandState<G>),
    /// The island already finished.
    Final(GaResult<G>, LadderStats),
}

/// Serializes and atomically persists an island snapshot (status 2),
/// taken at the top of a generation like [`save_state`].
pub(crate) fn save_island_state<G: Genome>(
    path: &Path,
    fp: u64,
    state: &IslandState<G>,
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.u32(VERSION);
    w.u64(fp);
    w.buf.push(2); // status: island state
    write_state_body(
        &mut w,
        state.ga.generation,
        &state.ga.rng,
        &state.ga.history,
        &state.ga.population,
        &state.ga.memo,
    );
    match &state.best {
        Some((g, f)) => {
            w.buf.push(1);
            w.bytes(&g.encode());
            w.f64(*f);
        }
        None => w.buf.push(0),
    }
    write_stats(&mut w, &state.stats);
    sim_core::persist::atomic_write(path, &w.finish())
}

/// Serializes and atomically persists a finished island's result
/// (status 4): the GA result plus its ladder accounting.
pub(crate) fn save_island_final<G: Genome>(
    path: &Path,
    fp: u64,
    result: &GaResult<G>,
    stats: &LadderStats,
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.u32(VERSION);
    w.u64(fp);
    w.buf.push(4); // status: island final
    w.bytes(&result.best.encode());
    w.f64(result.best_fitness);
    w.u32(result.history.len() as u32);
    for &h in &result.history {
        w.f64(h);
    }
    write_stats(&mut w, stats);
    sim_core::persist::atomic_write(path, &w.finish())
}

/// Loads whatever island checkpoint `path` holds. Every failure — and any
/// non-island status — degrades to [`IslandLoaded::None`] with a warning,
/// exactly like [`load`].
pub(crate) fn load_island<G: Genome>(path: &Path, fp: u64, assoc: usize) -> IslandLoaded<G> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(_) => return IslandLoaded::None,
    };
    let parsed = (|| {
        let (status, mut r) = open(&buf, fp)?;
        match status {
            2 => {
                let ga = read_state_body(&mut r, assoc)?;
                let best = match r.u8()? {
                    0 => None,
                    1 => Some((G::decode(r.bytes()?, assoc)?, r.f64()?)),
                    _ => return None,
                };
                let stats = read_stats(&mut r)?;
                Some(IslandLoaded::State(IslandState { ga, best, stats }))
            }
            4 => {
                let result = read_final_body(&mut r, assoc)?;
                let stats = read_stats(&mut r)?;
                Some(IslandLoaded::Final(result, stats))
            }
            _ => None,
        }
    })();
    match parsed {
        Some(loaded) => loaded,
        None => {
            eprintln!(
                "evolve: ignoring unusable island checkpoint {} (corrupt or \
                 from a different configuration); restarting the island",
                path.display()
            );
            IslandLoaded::None
        }
    }
}

/// Atomically persists a migration mailbox (status 3): the sender's elite
/// genomes with their full-fidelity scores, in rank order.
pub(crate) fn save_mailbox(
    path: &Path,
    fp: u64,
    migrants: &[(Vec<u8>, f64)],
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.u32(VERSION);
    w.u64(fp);
    w.buf.push(3); // status: mailbox
    w.u32(migrants.len() as u32);
    for (enc, fitness) in migrants {
        w.bytes(enc);
        w.f64(*fitness);
    }
    sim_core::persist::atomic_write(path, &w.finish())
}

/// Loads a migration mailbox. `None` for a missing, corrupt, torn, or
/// wrong-fingerprint file — the reader polls until a valid mailbox
/// appears, so an interrupted sender is indistinguishable from a slow one.
pub(crate) fn load_mailbox(path: &Path, fp: u64) -> Option<Vec<(Vec<u8>, f64)>> {
    let buf = std::fs::read(path).ok()?;
    let (status, mut r) = open(&buf, fp)?;
    if status != 3 {
        return None;
    }
    (0..r.u32()?)
        .map(|_| Some((r.bytes()?.to_vec(), r.f64()?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gippr::Ipv;

    fn cfg() -> GaConfig {
        GaConfig::quick(17)
    }

    fn state() -> ResumeState<Ipv> {
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        rng.gen::<u64>();
        let population: Vec<Ipv> = (0..6).map(|_| Ipv::random(16, &mut rng)).collect();
        let mut memo = HashMap::new();
        memo.insert(population[0].encode(), 1.25);
        memo.insert(population[1].encode(), f64::NEG_INFINITY);
        ResumeState {
            generation: 3,
            rng,
            history: vec![1.0, 1.1, 1.2],
            population,
            memo,
        }
    }

    fn save(path: &Path, fp: u64, s: &ResumeState<Ipv>) {
        save_state(
            path,
            fp,
            s.generation,
            &s.rng,
            &s.history,
            &s.population,
            &s.memo,
        )
        .unwrap();
    }

    #[test]
    fn state_roundtrips_exactly() {
        let dir = std::env::temp_dir().join(format!("gack-rt-{}", std::process::id()));
        let path = dir.join("stage.ckpt");
        let fp = fingerprint(&cfg(), "stage");
        let original = state();
        save(&path, fp, &original);
        match load::<Ipv>(&path, fp, 16) {
            Loaded::State(loaded) => {
                assert_eq!(loaded.generation, original.generation);
                assert_eq!(loaded.rng, original.rng);
                assert_eq!(loaded.history, original.history);
                assert_eq!(loaded.population, original.population);
                assert_eq!(loaded.memo, original.memo);
            }
            _ => panic!("expected an in-progress state"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn final_roundtrips_and_wrong_fingerprint_is_rejected() {
        let dir = std::env::temp_dir().join(format!("gack-fin-{}", std::process::id()));
        let path = dir.join("stage.ckpt");
        let fp = fingerprint(&cfg(), "stage");
        let result = GaResult {
            best: Ipv::lru_insertion(16),
            best_fitness: 1.5,
            history: vec![1.0, 1.5],
        };
        save_final(&path, fp, &result).unwrap();
        match load::<Ipv>(&path, fp, 16) {
            Loaded::Final(loaded) => {
                assert_eq!(loaded.best, result.best);
                assert_eq!(loaded.best_fitness, result.best_fitness);
                assert_eq!(loaded.history, result.history);
            }
            _ => panic!("expected a final result"),
        }
        // A different stage label (or config) must not resume this file.
        let other = fingerprint(&cfg(), "other-stage");
        assert!(matches!(load::<Ipv>(&path, other, 16), Loaded::None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_degrade_to_restart() {
        let dir = std::env::temp_dir().join(format!("gack-bad-{}", std::process::id()));
        let path = dir.join("stage.ckpt");
        let fp = fingerprint(&cfg(), "stage");
        save(&path, fp, &state());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(load::<Ipv>(&path, fp, 16), Loaded::None),
            "CRC must catch a flipped byte"
        );
        // Truncation and absence likewise restart rather than panic.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(load::<Ipv>(&path, fp, 16), Loaded::None));
        let _ = std::fs::remove_file(&path);
        assert!(matches!(load::<Ipv>(&path, fp, 16), Loaded::None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn island_state_and_final_roundtrip_exactly() {
        let dir = std::env::temp_dir().join(format!("gack-isl-{}", std::process::id()));
        let path = dir.join("island-0.ckpt");
        let fp = fingerprint(&cfg(), "island-0");
        let ga = state();
        let best = Some((ga.population[0].clone(), 1.375f64));
        let stats = LadderStats {
            profile_evals: 10,
            sampled_evals: 6,
            full_evals: 3,
            pruned: 2,
            full_saved: 7,
        };
        save_island_state(
            &path,
            fp,
            &IslandState {
                ga: state(),
                best: best.clone(),
                stats,
            },
        )
        .unwrap();
        match load_island::<Ipv>(&path, fp, 16) {
            IslandLoaded::State(loaded) => {
                assert_eq!(loaded.ga.generation, ga.generation);
                assert_eq!(loaded.ga.rng, ga.rng);
                assert_eq!(loaded.ga.population, ga.population);
                assert_eq!(loaded.ga.memo, ga.memo);
                assert_eq!(loaded.best, best);
                assert_eq!(loaded.stats, stats);
            }
            _ => panic!("expected an island state"),
        }
        // A plain GA loader must not accept an island checkpoint.
        assert!(matches!(load::<Ipv>(&path, fp, 16), Loaded::None));

        let result = GaResult {
            best: Ipv::lru_insertion(16),
            best_fitness: 1.5,
            history: vec![1.1, 1.5],
        };
        save_island_final(&path, fp, &result, &stats).unwrap();
        match load_island::<Ipv>(&path, fp, 16) {
            IslandLoaded::Final(loaded, s) => {
                assert_eq!(loaded.best, result.best);
                assert_eq!(loaded.best_fitness, result.best_fitness);
                assert_eq!(loaded.history, result.history);
                assert_eq!(s, stats);
            }
            _ => panic!("expected an island final"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mailbox_roundtrips_and_rejects_damage() {
        let dir = std::env::temp_dir().join(format!("gack-mbx-{}", std::process::id()));
        let path = dir.join("mbx-island-0-epoch-1.mbx");
        let fp = 0xDEAD_BEEFu64;
        let migrants = vec![
            (Ipv::lru(16).encode(), 1.25),
            (Ipv::lru_insertion(16).encode(), 1.5),
        ];
        save_mailbox(&path, fp, &migrants).unwrap();
        assert_eq!(load_mailbox(&path, fp), Some(migrants.clone()));
        // Wrong fingerprint, truncation, and corruption all read as "not
        // there yet".
        assert_eq!(load_mailbox(&path, fp ^ 1), None);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(load_mailbox(&path, fp), None);
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(load_mailbox(&path, fp), None);
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_mailbox(&path, fp), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_stage_files() {
        let dir = std::env::temp_dir().join(format!("gack-clear-{}", std::process::id()));
        let ckpt = Checkpointing::in_dir(&dir);
        let fp = fingerprint(&cfg(), "stage");
        save(&ckpt.stage_path("stage"), fp, &state());
        assert!(ckpt.stage_path("stage").exists());
        ckpt.clear();
        assert!(!ckpt.stage_path("stage").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
