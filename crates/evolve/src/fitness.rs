//! The genetic algorithm's fitness function (paper Section 4.3).
//!
//! For each workload, an LLC access stream is captured once through the
//! fixed L1/L2 hierarchy; candidate vectors then replay the stream at the
//! LLC only. Fitness is the workload-weighted arithmetic mean of the
//! linear-CPI speedup over LRU — exactly the paper's recipe ("we estimate
//! the resulting CPI as a linear function of the number of misses" and
//! evolve for "a good arithmetic mean speedup").

use gippr::{DgipprPolicy, GiplrPolicy, GipprPolicy, Ipv};
use mem_model::cpi::LinearCpiModel;
use mem_model::{
    capture_llc_stream, replay_llc_mono, replay_llc_sharded, replay_llc_sliced, HierarchyConfig,
    WindowPerfModel,
};
use sim_core::{
    Access, CacheGeometry, ReplacementPolicy, SampledStream, ShardAffinity, ShardedStream,
    StackDistanceProfile,
};
use std::sync::Arc;
use traces::spec2006::Spec2006;
use traces::WorkloadSpec;

/// Which replacement substrate a single vector drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// Tree PseudoLRU state (GIPPR, Section 3.4).
    Plru,
    /// Full true-LRU recency stacks (GIPLR, Section 2).
    Lru,
}

/// Scale knobs for fitness evaluation; the defaults fit CI-speed runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitnessScale {
    /// Shift applied to cache capacities and workload footprints
    /// (`HierarchyConfig::paper_scaled`); 0 = the paper's 4 MB LLC.
    pub shift: u32,
    /// Worker threads for population evaluation.
    pub threads: usize,
}

impl Default for FitnessScale {
    fn default() -> Self {
        FitnessScale {
            shift: 4,
            threads: available_threads(),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Default sampling period for the set-sampled fitness fidelity: one in
/// four sets is replayed (an exact 4× access-count reduction for
/// set-local policies).
pub const DEFAULT_SAMPLE_EVERY: usize = 4;

/// A workload's set-sampled sub-stream plus its own LRU baseline, the
/// inputs of the mid-fidelity tier ([`FitnessContext::fitness_single_sampled`]).
#[derive(Debug, Clone)]
pub struct SampledWorkload {
    /// The deterministic set-sampled sub-stream.
    pub stream: SampledStream,
    /// Instructions attributed to the sampled accesses' measured portion.
    pub instructions: u64,
    /// True-LRU misses over the sampled measured portion (from a Mattson
    /// pass over the sub-stream — exact, no replay).
    pub lru_misses: u64,
}

impl SampledWorkload {
    /// Captures the sampled sub-stream and its LRU baseline.
    pub fn build(
        stream: &[Access],
        geom: &CacheGeometry,
        warmup: usize,
        every: usize,
        offset: usize,
    ) -> Self {
        let sampled = SampledStream::build(stream, geom, warmup, every, offset);
        let profile =
            StackDistanceProfile::capture(sampled.stream(), geom, sampled.warmup(), geom.ways());
        SampledWorkload {
            instructions: profile.instructions().max(1),
            lru_misses: profile.misses(geom.ways()),
            stream: sampled,
        }
    }
}

/// One workload's captured LLC stream and its LRU baseline.
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    /// Workload display name.
    pub name: String,
    /// The captured LLC access stream (shared, replayed by every candidate).
    pub stream: Arc<Vec<Access>>,
    /// The same stream pre-routed by set index, built once at context
    /// construction; set-local candidates replay it shard by shard every
    /// generation without re-deriving set/tag per access.
    pub sharded: Arc<ShardedStream>,
    /// Accesses used to warm the cache before measuring.
    pub warmup: usize,
    /// Instructions represented by the measured portion.
    pub instructions: u64,
    /// LRU misses over the measured portion (the speedup denominator).
    pub lru_misses: u64,
    /// Single-pass stack-distance profile of the stream at the context
    /// geometry's set partition: exact LRU hit/miss counts at every
    /// associativity up to the geometry's ways, captured once. Source of
    /// `lru_misses`/`instructions` and of the associativity prefilter
    /// ([`FitnessContext::lru_speedup_at`]).
    pub profile: Arc<StackDistanceProfile>,
    /// Set-sampled sub-stream and its LRU baseline (fidelity 2 of the
    /// evaluation ladder). Built once at context construction from the
    /// same capture, so the sampled subset is a pure function of the
    /// stream and geometry — identical across shard counts and resumes.
    pub sampled: Arc<SampledWorkload>,
    /// Simpoint/benchmark weight in the mean.
    pub weight: f64,
}

/// Captured streams plus everything needed to score a candidate vector.
#[derive(Debug, Clone)]
pub struct FitnessContext {
    streams: Vec<WorkloadStream>,
    geom: CacheGeometry,
    model: LinearCpiModel,
    threads: usize,
}

impl FitnessContext {
    /// Builds a context from explicit workload specs. `accesses_per_stream`
    /// is the reference-trace length fed to L1 (the LLC stream is shorter).
    pub fn from_specs(
        specs: &[(WorkloadSpec, f64)],
        accesses_per_stream: usize,
        scale: FitnessScale,
    ) -> Self {
        let config = HierarchyConfig::paper_scaled(scale.shift)
            .expect("scale shift leaves valid geometries");
        let streams = specs
            .iter()
            .map(|(spec, weight)| {
                let scaled = spec.scaled_down(scale.shift);
                let (stream, _core_instructions) =
                    capture_llc_stream(config, scaled.generator(0).take(accesses_per_stream));
                let warmup = mem_model::llc::default_warmup(stream.len());
                // One Mattson pass replaces the LRU baseline replay: the
                // profile's miss count at the full associativity IS the
                // sequential replay's (exactness is proven in sim-verify
                // and the mem-model differential tests), and the same
                // capture answers every narrower associativity for the
                // prefilter below.
                let profile =
                    StackDistanceProfile::capture(&stream, &config.llc, warmup, config.llc.ways());
                let sharded = ShardedStream::for_parallelism(
                    &stream,
                    &config.llc,
                    warmup,
                    sim_core::pool::global().cap(),
                );
                let sampled =
                    SampledWorkload::build(&stream, &config.llc, warmup, DEFAULT_SAMPLE_EVERY, 0);
                WorkloadStream {
                    name: scaled.name.clone(),
                    stream: Arc::new(stream),
                    sharded: Arc::new(sharded),
                    warmup,
                    instructions: profile.instructions().max(1),
                    lru_misses: profile.misses(config.llc.ways()),
                    profile: Arc::new(profile),
                    sampled: Arc::new(sampled),
                    weight: *weight,
                }
            })
            .collect();
        FitnessContext {
            streams,
            geom: config.llc,
            model: LinearCpiModel::default(),
            threads: scale.threads.max(1),
        }
    }

    /// Builds a context over SPEC benchmark models, `simpoints` weighted
    /// segments each.
    pub fn for_benchmarks(
        benchmarks: &[Spec2006],
        simpoints: usize,
        accesses_per_stream: usize,
        scale: FitnessScale,
    ) -> Self {
        let specs: Vec<(WorkloadSpec, f64)> = benchmarks
            .iter()
            .flat_map(|b| {
                b.simpoints()
                    .into_iter()
                    .take(simpoints.max(1))
                    .map(move |sp| {
                        let mut spec = b.workload();
                        spec.seed ^= sp.index.wrapping_mul(0x517c_c1b7_2722_0a95);
                        (spec, sp.weight)
                    })
            })
            .collect();
        Self::from_specs(&specs, accesses_per_stream, scale)
    }

    /// The LLC geometry candidates are scored against.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// The captured workload streams.
    pub fn streams(&self) -> &[WorkloadStream] {
        &self.streams
    }

    /// Worker threads used by [`FitnessContext::fitness_many`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cheap associativity prefilter: the weighted-mean linear-CPI speedup
    /// of `ways`-way true LRU (same set count, narrower sets) over the
    /// context's full-width LRU baseline, read straight off the per-stream
    /// stack-distance profiles with no replay. LRU is inclusion-preserving,
    /// so these are exact miss counts, not estimates — the GA can rank
    /// candidate associativities (or bound how much headroom a narrower
    /// cache leaves) before paying for any per-candidate replays.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ways <= geometry().ways()`.
    pub fn lru_speedup_at(&self, ways: usize) -> f64 {
        let mut total = 0.0;
        let mut total_weight = 0.0;
        for ws in &self.streams {
            let misses = ws.profile.misses(ways);
            total += self.model.speedup(ws.instructions, ws.lru_misses, misses) * ws.weight;
            total_weight += ws.weight;
        }
        if total_weight == 0.0 {
            1.0
        } else {
            total / total_weight
        }
    }

    /// Re-routes every captured stream into exactly `shards` shards
    /// (power of two, at most the geometry's set count). The default
    /// routing follows the worker pool's budget; tests and benchmarks use
    /// this to pin a specific routing regardless of host parallelism.
    pub fn with_shards(mut self, shards: usize) -> Self {
        for ws in &mut self.streams {
            ws.sharded = Arc::new(ShardedStream::build(
                &ws.stream, &self.geom, ws.warmup, shards,
            ));
        }
        self
    }

    /// Returns a context restricted to streams whose names pass `keep`
    /// (the WN1 holdout mechanism).
    pub fn filtered<F: Fn(&str) -> bool>(&self, keep: F) -> FitnessContext {
        FitnessContext {
            streams: self
                .streams
                .iter()
                .filter(|s| keep(&s.name))
                .cloned()
                .collect(),
            geom: self.geom,
            model: self.model,
            threads: self.threads,
        }
    }

    /// The GA inner loop: replays every stream against a fresh policy from
    /// `make`. Generic over the concrete policy type so the whole replay —
    /// dispatch, tag scan, stats — monomorphizes per substrate instead of
    /// paying double virtual dispatch through `Box<dyn>`.
    fn speedup_with<P: ReplacementPolicy, F: Fn() -> P>(&self, make: F) -> f64 {
        let perf = WindowPerfModel::default();
        // One probe instance picks the replay path: set-local policies
        // (GIPPR/GIPLR substrates) reuse the routing pre-pass captured at
        // context construction when it actually fans out; otherwise the
        // bit-sliced kernel engine runs the whole stream when the policy
        // describes one (GIPPR/GIPLR always do), and the monomorphized
        // sequential replay covers the rest (cache-global policies such
        // as the DGIPPR duel's PSEL, or kernels declining the geometry).
        // All paths produce bit-identical results.
        let probe = make();
        let set_local = probe.shard_affinity() == ShardAffinity::SetLocal;
        let kernel = probe.slice_kernel();
        let mut total_weight = 0.0;
        let mut total = 0.0;
        for ws in &self.streams {
            let run = if set_local && ws.sharded.shards() > 1 {
                replay_llc_sharded(&ws.sharded, &make, &perf)
            } else if let Some(run) = kernel
                .as_ref()
                .and_then(|k| replay_llc_sliced(&ws.stream, self.geom, k, ws.warmup, &perf))
            {
                run
            } else {
                replay_llc_mono(&ws.stream, self.geom, make(), ws.warmup, &perf)
            };
            let speedup = self
                .model
                .speedup(ws.instructions, ws.lru_misses, run.stats.misses);
            total += speedup * ws.weight;
            total_weight += ws.weight;
        }
        if total_weight == 0.0 {
            1.0
        } else {
            total / total_weight
        }
    }

    /// Rebuilds every workload's sampled sub-stream with an explicit
    /// sampling period and residue class (tests and experiments; the
    /// default is `set % DEFAULT_SAMPLE_EVERY == 0`).
    pub fn with_sampling(mut self, every: usize, offset: usize) -> Self {
        for ws in &mut self.streams {
            ws.sampled = Arc::new(SampledWorkload::build(
                &ws.stream, &self.geom, ws.warmup, every, offset,
            ));
        }
        self
    }

    /// The sampled-tier analogue of [`speedup_with`](Self::speedup_with):
    /// replays only the sampled sub-streams against their own sampled LRU
    /// baselines. For set-local policies the per-set results are exact
    /// (set independence, proven by the shard-affinity model check) —
    /// only the *aggregation* over a subset of sets makes this an
    /// estimate of the full-stream fitness. Shard routing never touches
    /// this path, so the value is bit-identical across shard counts.
    fn sampled_speedup_with<P: ReplacementPolicy, F: Fn() -> P>(&self, make: F) -> f64 {
        let perf = WindowPerfModel::default();
        let probe = make();
        let kernel = probe.slice_kernel();
        let mut total_weight = 0.0;
        let mut total = 0.0;
        for ws in &self.streams {
            let sw = &ws.sampled;
            let run = if let Some(run) = kernel.as_ref().and_then(|k| {
                replay_llc_sliced(sw.stream.stream(), self.geom, k, sw.stream.warmup(), &perf)
            }) {
                run
            } else {
                replay_llc_mono(
                    sw.stream.stream(),
                    self.geom,
                    make(),
                    sw.stream.warmup(),
                    &perf,
                )
            };
            let speedup = self
                .model
                .speedup(sw.instructions, sw.lru_misses, run.stats.misses);
            total += speedup * ws.weight;
            total_weight += ws.weight;
        }
        if total_weight == 0.0 {
            1.0
        } else {
            total / total_weight
        }
    }

    /// Set-sampled mean speedup of a single vector (ladder fidelity 2):
    /// an exact per-set replay of one in
    /// [`SampledStream::every`](sim_core::SampledStream::every) sets.
    pub fn fitness_single_sampled(&self, ipv: &Ipv, substrate: Substrate) -> f64 {
        let geom = self.geom;
        match substrate {
            Substrate::Plru => self.sampled_speedup_with(|| {
                GipprPolicy::new(&geom, ipv.clone()).expect("assoc matches")
            }),
            Substrate::Lru => self.sampled_speedup_with(|| {
                GiplrPolicy::new(&geom, ipv.clone()).expect("assoc matches")
            }),
        }
    }

    /// Set-sampled mean speedup of a dueling vector set (ladder
    /// fidelity 2). Leader sets are re-derived from the *sampled* set
    /// count, so the duel keeps its leader/follower proportions; DGIPPR's
    /// PSEL makes this tier an estimate in a second way (cross-set
    /// coupling), which is fine — elites are re-scored at full fidelity.
    ///
    /// # Panics
    ///
    /// Panics unless `vectors.len()` is 2 or 4.
    pub fn fitness_set_sampled(&self, vectors: &[Ipv]) -> f64 {
        assert!(
            vectors.len() == 2 || vectors.len() == 4,
            "DGIPPR duels 2 or 4 vectors, got {}",
            vectors.len()
        );
        let geom = self.geom;
        let leaders = (geom.sets() / 64).clamp(4, 32);
        self.sampled_speedup_with(|| {
            DgipprPolicy::with_config(&geom, vectors.to_vec(), leaders, "DGIPPR")
                .expect("valid duel config")
        })
    }

    /// Zero-replay profile score of a single vector (ladder fidelity 1).
    ///
    /// The `sim-lint` reachability analysis proves which recency positions
    /// a vector can ever populate; a vector with `d` dead positions runs
    /// the cache as if it were at most `ways - d` ways wide, and the
    /// stored Mattson profiles answer "what would `ways - d`-way LRU
    /// cost?" exactly, with no replay at all. This is a *heuristic
    /// ranking* (insertion/promotion order within the live positions is
    /// invisible to it), never a fitness: it only decides which genomes
    /// graduate to the replay tiers.
    pub fn profile_score_single(&self, ipv: &Ipv) -> f64 {
        let analysis = ipv.analysis();
        let live = analysis.reachable_positions().len().max(1);
        let ways = self.geom.ways();
        self.lru_speedup_at(live.min(ways))
    }

    /// Zero-replay profile score of a vector set (ladder fidelity 1): the
    /// best member's score — a duel can always fall back to its best
    /// vector, so the set's potential is bounded by its best member.
    pub fn profile_score_set(&self, vectors: &[Ipv]) -> f64 {
        vectors
            .iter()
            .map(|v| self.profile_score_single(v))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean speedup over LRU of a single vector on `substrate`.
    pub fn fitness_single(&self, ipv: &Ipv, substrate: Substrate) -> f64 {
        let geom = self.geom;
        match substrate {
            Substrate::Plru => {
                self.speedup_with(|| GipprPolicy::new(&geom, ipv.clone()).expect("assoc matches"))
            }
            Substrate::Lru => {
                self.speedup_with(|| GiplrPolicy::new(&geom, ipv.clone()).expect("assoc matches"))
            }
        }
    }

    /// Mean speedup over LRU of a dueling 2- or 4-vector set (DGIPPR).
    ///
    /// # Panics
    ///
    /// Panics unless `vectors.len()` is 2 or 4.
    pub fn fitness_set(&self, vectors: &[Ipv]) -> f64 {
        assert!(
            vectors.len() == 2 || vectors.len() == 4,
            "DGIPPR duels 2 or 4 vectors, got {}",
            vectors.len()
        );
        let geom = self.geom;
        // Smaller scaled caches have fewer sets; shrink the leader count to
        // fit while keeping the paper's 32 for full-size runs.
        let leaders = (geom.sets() / 64).clamp(4, 32);
        self.speedup_with(|| {
            DgipprPolicy::with_config(&geom, vectors.to_vec(), leaders, "DGIPPR")
                .expect("valid duel config")
        })
    }

    /// Per-workload speedups (not aggregated), for reporting.
    pub fn per_workload_single(&self, ipv: &Ipv, substrate: Substrate) -> Vec<(String, f64)> {
        let perf = WindowPerfModel::default();
        self.streams
            .iter()
            .map(|ws| {
                let run = match substrate {
                    Substrate::Plru => replay_llc_mono(
                        &ws.stream,
                        self.geom,
                        GipprPolicy::new(&self.geom, ipv.clone()).expect("assoc matches"),
                        ws.warmup,
                        &perf,
                    ),
                    Substrate::Lru => replay_llc_mono(
                        &ws.stream,
                        self.geom,
                        GiplrPolicy::new(&self.geom, ipv.clone()).expect("assoc matches"),
                        ws.warmup,
                        &perf,
                    ),
                };
                (
                    ws.name.clone(),
                    self.model
                        .speedup(ws.instructions, ws.lru_misses, run.stats.misses),
                )
            })
            .collect()
    }

    /// Evaluates many candidates on the persistent worker pool, capped at
    /// `self.threads` concurrent executors. The pool threads are created
    /// once per process and reused across generations and experiments.
    pub fn fitness_many<G, F>(&self, genomes: &[G], eval: F) -> Vec<f64>
    where
        G: Sync,
        F: Fn(&FitnessContext, &G) -> f64 + Sync,
    {
        sim_core::pool::global().run(genomes.len(), self.threads, |i| eval(self, &genomes[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum, Spec2006::DealII],
            1,
            20_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    #[test]
    fn lru_vector_scores_about_one() {
        let ctx = tiny_ctx();
        let f = ctx.fitness_single(&Ipv::lru(16), Substrate::Lru);
        assert!(
            (f - 1.0).abs() < 1e-9,
            "GIPLR with the LRU vector IS LRU: {f}"
        );
    }

    #[test]
    fn lip_beats_lru_on_streaming_heavy_mix() {
        let ctx = FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum],
            1,
            20_000,
            FitnessScale {
                shift: 6,
                threads: 1,
            },
        );
        let f = ctx.fitness_single(&Ipv::lru_insertion(16), Substrate::Lru);
        assert!(f > 1.02, "LIP on pure streaming should beat LRU: {f}");
    }

    #[test]
    fn filtered_drops_holdout() {
        let ctx = tiny_ctx();
        let kept = ctx.filtered(|name| !name.contains("libquantum"));
        assert_eq!(kept.streams().len(), ctx.streams().len() - 1);
        assert!(kept
            .streams()
            .iter()
            .all(|s| !s.name.contains("libquantum")));
    }

    #[test]
    fn fitness_many_matches_sequential() {
        let ctx = tiny_ctx();
        let candidates = vec![Ipv::lru(16), Ipv::lru_insertion(16)];
        let parallel = ctx.fitness_many(&candidates, |c, g| c.fitness_single(g, Substrate::Plru));
        let sequential: Vec<f64> = candidates
            .iter()
            .map(|g| ctx.fitness_single(g, Substrate::Plru))
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sharded_fitness_matches_sequential_replay() {
        // fitness_single routes GIPPR/GIPLR through the pre-routed sharded
        // path; recomputing the same mean with sequential whole-stream
        // replays must agree to the bit. Pin a multi-shard routing so the
        // sharded path is exercised even on single-core hosts (where the
        // default routing degenerates to one shard and the mono path).
        let ctx = tiny_ctx().with_shards(4);
        let ipv = Ipv::lru_insertion(16);
        for substrate in [Substrate::Plru, Substrate::Lru] {
            let sharded = ctx.fitness_single(&ipv, substrate);
            let perf = WindowPerfModel::default();
            let mut total = 0.0;
            let mut total_weight = 0.0;
            for ws in ctx.streams() {
                let misses = match substrate {
                    Substrate::Plru => {
                        let p = GipprPolicy::new(&ctx.geometry(), ipv.clone()).unwrap();
                        replay_llc_mono(&ws.stream, ctx.geometry(), p, ws.warmup, &perf)
                    }
                    Substrate::Lru => {
                        let p = GiplrPolicy::new(&ctx.geometry(), ipv.clone()).unwrap();
                        replay_llc_mono(&ws.stream, ctx.geometry(), p, ws.warmup, &perf)
                    }
                }
                .stats
                .misses;
                total += ctx.model.speedup(ws.instructions, ws.lru_misses, misses) * ws.weight;
                total_weight += ws.weight;
            }
            assert_eq!(sharded, total / total_weight, "{substrate:?}");
        }
    }

    #[test]
    fn assoc_prefilter_matches_replayed_lru() {
        // The prefilter reads miss counts off the stored profiles; they
        // must be bit-identical to actually replaying true LRU at the
        // narrower associativity (same set count), and the full-width
        // prefilter is the baseline itself: exactly 1.0.
        let ctx = tiny_ctx();
        assert_eq!(ctx.lru_speedup_at(ctx.geometry().ways()), 1.0);
        let perf = WindowPerfModel::default();
        for ways in [2usize, 4] {
            let narrow =
                CacheGeometry::from_sets(ctx.geometry().sets(), ways, ctx.geometry().line_bytes())
                    .unwrap();
            let mut total = 0.0;
            let mut total_weight = 0.0;
            for ws in ctx.streams() {
                let run = replay_llc_mono(
                    &ws.stream,
                    narrow,
                    baselines::TrueLru::new(&narrow),
                    ws.warmup,
                    &perf,
                );
                assert_eq!(ws.profile.misses(ways), run.stats.misses, "{}", ws.name);
                total += ctx
                    .model
                    .speedup(ws.instructions, ws.lru_misses, run.stats.misses)
                    * ws.weight;
                total_weight += ws.weight;
            }
            assert_eq!(ctx.lru_speedup_at(ways), total / total_weight);
        }
    }

    #[test]
    fn vector_set_fitness_runs() {
        let ctx = tiny_ctx();
        let f = ctx.fitness_set(&gippr::vectors::wi_2dgippr());
        assert!(f > 0.5 && f < 3.0, "sane speedup range: {f}");
    }

    #[test]
    #[should_panic(expected = "2 or 4")]
    fn vector_set_rejects_three() {
        let ctx = tiny_ctx();
        let v = Ipv::lru(16);
        let _ = ctx.fitness_set(&[v.clone(), v.clone(), v]);
    }

    #[test]
    fn per_workload_reports_every_stream() {
        let ctx = tiny_ctx();
        let rows = ctx.per_workload_single(&Ipv::lru(16), Substrate::Plru);
        assert_eq!(rows.len(), ctx.streams().len());
    }
}
