#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Search over insertion/promotion vectors: genetic algorithm, uniform
//! random sampling, and hill-climbing, with workload-neutral
//! cross-validation.
//!
//! Reproduces the paper's Section 4 methodology:
//!
//! * [`FitnessContext`] — the fast fitness function: captured LLC access
//!   streams replayed under a candidate IPV, scored by the linear CPI
//!   model's speedup over LRU (Section 4.3), weighted across workloads.
//! * [`Ga`] — the genetic algorithm (Section 4.2): single-point crossover,
//!   5 % element mutation, elitism, parallel fitness evaluation. Works over
//!   single IPVs *or* dueling vector sets (for evolving 2-/4-DGIPPR).
//! * [`random_search`] — uniform design-space sampling (Figure 1).
//! * [`hillclimb`] — local refinement (Section 2.6's closing remark).
//! * [`crossval`] — the WN1 workload-neutral protocol (Section 4.4): hold
//!   one workload out, evolve on the rest, evaluate on the holdout.
//! * [`ladder`] — the multi-fidelity evaluation ladder: viability →
//!   zero-replay profile score → set-sampled replay → full replay, with
//!   deterministic promotion and fidelity-tagged memoization.
//! * [`island`] — the island-model GA: process-parallel populations in a
//!   migration ring, exchanging full-fidelity elites through crash-safe
//!   atomic mailbox files (the paper's cluster-scale search on one box).
//!
//! # Example
//!
//! ```no_run
//! use evolve::{FitnessContext, Ga, GaConfig, Substrate};
//! use traces::spec2006::Spec2006;
//!
//! let ctx = FitnessContext::for_benchmarks(
//!     &Spec2006::all(), 3, 50_000, evolve::FitnessScale::default());
//! let result = Ga::new(GaConfig::quick(1)).run_single(&ctx, Substrate::Plru);
//! println!("best vector {} at {:.3}x LRU", result.best, result.best_fitness);
//! ```

pub mod checkpoint;
pub mod crossval;
pub mod fitness;
pub mod ga;
pub mod island;
pub mod ladder;
pub mod search;

pub use checkpoint::Checkpointing;
pub use crossval::{wn1_evaluation, Wn1Outcome};
pub use fitness::{
    FitnessContext, FitnessScale, SampledWorkload, Substrate, WorkloadStream, DEFAULT_SAMPLE_EVERY,
};
pub use ga::{Ga, GaConfig, GaResult, Genome, VectorSet};
pub use island::{run_ipv_island, run_island, IslandConfig, IslandOutcome};
pub use ladder::{Fidelity, LadderConfig, LadderStats};
pub use search::{hillclimb, random_search};
