//! Workload-neutral cross-validation (paper Section 4.4).
//!
//! "Our workload neutral k (WNk) methodology … would hold out k workloads,
//! using the other n − k workloads to generate IPVs, then use the IPVs to
//! evaluate GIPPR/DGIPPR on the first k workloads." We implement WN1: for
//! each benchmark, vectors are evolved on the other 28 and evaluated on the
//! holdout, eliminating training bias. Workload-inclusive (WI) evaluation
//! trains on everything and is reported alongside (Figure 12 compares the
//! two; the difference is small).

use crate::fitness::{FitnessContext, Substrate};
use crate::ga::{Ga, GaConfig, VectorSet};
use gippr::Ipv;

/// One benchmark's WN1 result.
#[derive(Debug, Clone)]
pub struct Wn1Outcome {
    /// The holdout benchmark name.
    pub holdout: String,
    /// The vector (or set) evolved without that benchmark.
    pub vectors: Vec<Ipv>,
    /// The holdout's speedup over LRU under those vectors.
    pub holdout_speedup: f64,
}

/// Runs the WN1 protocol for each distinct benchmark prefix in `ctx`:
/// evolve on every stream whose name does not start with the holdout's
/// name, evaluate on those that do.
///
/// `n_vectors` of 1 runs single-vector GIPPR; 2 or 4 evolve a dueling set.
/// Benchmarks sharing a name prefix (simpoints) are held out together.
///
/// # Panics
///
/// Panics if `n_vectors` is not 1, 2, or 4.
pub fn wn1_evaluation(
    ctx: &FitnessContext,
    config: GaConfig,
    n_vectors: usize,
    substrate: Substrate,
) -> Vec<Wn1Outcome> {
    assert!(
        matches!(n_vectors, 1 | 2 | 4),
        "WN1 evaluates 1, 2, or 4 vectors, got {n_vectors}"
    );
    let mut names: Vec<String> = ctx.streams().iter().map(|s| s.name.clone()).collect();
    names.sort();
    names.dedup();

    names
        .into_iter()
        .map(|holdout| {
            let train = ctx.filtered(|n| n != holdout);
            let test = ctx.filtered(|n| n == holdout);
            let ga = Ga::new(config);
            let (vectors, _train_fitness) = if n_vectors == 1 {
                let r = ga.run_single(&train, substrate);
                (vec![r.best], r.best_fitness)
            } else {
                let seeds = if n_vectors == 2 {
                    vec![VectorSet::new(gippr::vectors::wi_2dgippr().to_vec())]
                } else {
                    vec![VectorSet::new(gippr::vectors::wi_4dgippr().to_vec())]
                };
                let r = ga.run_set(&train, n_vectors, seeds);
                (r.best.vectors().to_vec(), r.best_fitness)
            };
            let holdout_speedup = if n_vectors == 1 {
                test.fitness_single(&vectors[0], substrate)
            } else {
                test.fitness_set(&vectors)
            };
            Wn1Outcome {
                holdout,
                vectors,
                holdout_speedup,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessScale;
    use traces::spec2006::Spec2006;

    fn ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum, Spec2006::Gamess, Spec2006::CactusADM],
            1,
            10_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    #[test]
    fn wn1_produces_one_outcome_per_benchmark() {
        let ctx = ctx();
        let cfg = GaConfig {
            generations: 2,
            ..GaConfig::quick(5)
        };
        let outcomes = wn1_evaluation(&ctx, cfg, 1, Substrate::Plru);
        assert_eq!(outcomes.len(), 3);
        let mut names: Vec<&str> = outcomes.iter().map(|o| o.holdout.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["416.gamess", "436.cactusADM", "462.libquantum"]);
    }

    #[test]
    fn wn1_vectors_are_valid_and_speedups_sane() {
        let ctx = ctx();
        let cfg = GaConfig {
            generations: 2,
            ..GaConfig::quick(6)
        };
        for o in wn1_evaluation(&ctx, cfg, 1, Substrate::Plru) {
            assert_eq!(o.vectors.len(), 1);
            assert_eq!(o.vectors[0].assoc(), 16);
            assert!(o.holdout_speedup > 0.3 && o.holdout_speedup < 5.0);
        }
    }

    #[test]
    fn wn1_set_variant_runs() {
        let ctx = ctx();
        let cfg = GaConfig {
            generations: 1,
            initial_population: 6,
            population: 4,
            ..GaConfig::quick(7)
        };
        let outcomes = wn1_evaluation(&ctx, cfg, 2, Substrate::Plru);
        assert!(outcomes.iter().all(|o| o.vectors.len() == 2));
    }

    #[test]
    #[should_panic(expected = "1, 2, or 4")]
    fn wn1_rejects_three_vectors() {
        let ctx = ctx();
        let _ = wn1_evaluation(&ctx, GaConfig::quick(1), 3, Substrate::Plru);
    }
}
