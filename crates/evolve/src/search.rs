//! Uniform random design-space sampling (Figure 1) and hill-climbing
//! refinement (Section 2.6).

use crate::fitness::{FitnessContext, Substrate};
use gippr::Ipv;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples `n` uniformly random IPVs and returns `(ipv, fitness)` pairs
/// sorted ascending by fitness — exactly the data behind the paper's
/// Figure 1 ("the speedup of each of 15,000 IPVs sorted in ascending order
/// of speedup").
pub fn random_search(
    ctx: &FitnessContext,
    substrate: Substrate,
    n: usize,
    seed: u64,
) -> Vec<(Ipv, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let assoc = ctx.geometry().ways();
    let candidates: Vec<Ipv> = (0..n).map(|_| Ipv::random(assoc, &mut rng)).collect();
    let fitness = ctx.fitness_many(&candidates, |c, g| c.fitness_single(g, substrate));
    let mut pairs: Vec<(Ipv, f64)> = candidates.into_iter().zip(fitness).collect();
    pairs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    pairs
}

/// Greedy best-improvement hill climbing from `start`: each step evaluates
/// every single-entry change and takes the best one; stops when no change
/// improves fitness or after `max_steps` steps. The paper suggests this as
/// a refinement ("we may further refine the vector using a hill-climbing
/// approach"), noting that zeroing parts of the evolved GIPLR vector nudged
/// its speedup from 3.1 % to 3.12 %.
pub fn hillclimb(
    ctx: &FitnessContext,
    substrate: Substrate,
    start: Ipv,
    max_steps: usize,
) -> (Ipv, f64) {
    let assoc = start.assoc();
    let mut current = start;
    let mut current_fitness = ctx.fitness_single(&current, substrate);
    for _ in 0..max_steps {
        // All single-entry neighbours.
        let mut neighbours = Vec::with_capacity((assoc + 1) * (assoc - 1));
        for idx in 0..=assoc {
            for value in 0..assoc as u8 {
                if current.entries()[idx] != value {
                    let mut n = current.clone();
                    n.set_entry(idx, value).expect("value in range");
                    neighbours.push(n);
                }
            }
        }
        let fitness = ctx.fitness_many(&neighbours, |c, g| c.fitness_single(g, substrate));
        let best = neighbours
            .into_iter()
            .zip(fitness)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one neighbour");
        if best.1 > current_fitness {
            current = best.0;
            current_fitness = best.1;
        } else {
            break;
        }
    }
    (current, current_fitness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessScale;
    use traces::spec2006::Spec2006;

    fn ctx() -> FitnessContext {
        FitnessContext::for_benchmarks(
            &[Spec2006::Libquantum],
            1,
            10_000,
            FitnessScale {
                shift: 6,
                threads: 2,
            },
        )
    }

    #[test]
    fn random_search_is_sorted_ascending() {
        let ctx = ctx();
        let results = random_search(&ctx, Substrate::Plru, 12, 3);
        assert_eq!(results.len(), 12);
        for w in results.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn random_search_deterministic() {
        let ctx = ctx();
        let a = random_search(&ctx, Substrate::Plru, 6, 9);
        let b = random_search(&ctx, Substrate::Plru, 6, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn random_search_spans_quality() {
        // The paper's point: most random IPVs are bad, a few are good.
        let ctx = ctx();
        let results = random_search(&ctx, Substrate::Plru, 16, 1);
        let worst = results.first().unwrap().1;
        let best = results.last().unwrap().1;
        assert!(best > worst, "spread exists: {worst}..{best}");
    }

    #[test]
    fn hillclimb_never_worsens() {
        let ctx = ctx();
        let start = gippr::Ipv::lru(16);
        let start_fitness = ctx.fitness_single(&start, Substrate::Plru);
        let (refined, fitness) = hillclimb(&ctx, Substrate::Plru, start, 2);
        assert!(fitness >= start_fitness);
        assert_eq!(refined.assoc(), 16);
    }

    #[test]
    fn hillclimb_improves_lru_on_streaming() {
        // On pure streaming, one step from LRU should discover LRU-position
        // insertion (or better).
        let ctx = ctx();
        let (_, fitness) = hillclimb(&ctx, Substrate::Plru, gippr::Ipv::lru(16), 1);
        assert!(fitness > 1.0, "one hillclimb step finds a win: {fitness}");
    }
}
