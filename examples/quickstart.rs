//! Quickstart: drop the paper's 4-vector adaptive PseudoLRU policy
//! (4-DGIPPR) into a last-level cache and compare it against true LRU on a
//! scan-heavy workload.
//!
//! Run with: `cargo run --release --example quickstart`

use pseudolru_ipv::baselines::TrueLru;
use pseudolru_ipv::gippr::{vectors, DgipprPolicy};
use pseudolru_ipv::sim::{Access, CacheGeometry, ReplacementPolicy, SetAssocCache};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's LLC: 4 MB, 16-way, 64-byte lines.
    let geom = CacheGeometry::new(4 * 1024 * 1024, 16, 64)?;

    // 4-DGIPPR: set-dueling among the paper's four published insertion/
    // promotion vectors, on ordinary PseudoLRU state (15 bits per set).
    let dgippr = DgipprPolicy::four_vector(&geom, vectors::wi_4dgippr())?;
    println!(
        "4-DGIPPR replacement state: {} bits/set + {} global bits (LRU would use {} bits/set)",
        dgippr.bits_per_set(),
        dgippr.global_bits(),
        pseudolru_ipv::sim::overhead::lru_bits_per_set(geom.ways()),
    );

    let mut dgippr_cache = SetAssocCache::new(geom, Box::new(dgippr));
    let mut lru_cache = SetAssocCache::new(geom, Box::new(TrueLru::new(&geom)));

    // A working set that fits, disturbed by an endless scan — the access
    // mix where LRU wastes its capacity on dead scan blocks.
    let working_set_blocks = 32_768u64; // 2 MB
    let mut scan_block = 1 << 32;
    for round in 0..40 {
        for b in 0..working_set_blocks {
            let a = Access::read(b * 64, 0x400);
            dgippr_cache.access(&a);
            lru_cache.access(&a);
        }
        if round % 2 == 0 {
            for _ in 0..65_536 {
                let a = Access::read(scan_block * 64, 0x500);
                dgippr_cache.access(&a);
                lru_cache.access(&a);
                scan_block += 1;
            }
        }
    }

    println!("LRU:      {}", lru_cache.stats());
    println!("4-DGIPPR: {}", dgippr_cache.stats());
    let ratio = dgippr_cache.stats().misses as f64 / lru_cache.stats().misses.max(1) as f64;
    println!("4-DGIPPR misses = {:.1}% of LRU's", ratio * 100.0);
    Ok(())
}
