//! Define a custom workload with the text DSL and race the replacement
//! policies on it — the downstream-user path for studying your own access
//! patterns.
//!
//! Run with: `cargo run --release --example custom_workload [-- path/to/spec.txt]`

use pseudolru_ipv::baselines::{DrripPolicy, TrueLru};
use pseudolru_ipv::gippr::{vectors, DgipprPolicy, PlruPolicy};
use pseudolru_ipv::model::cpi::WindowPerfModel;
use pseudolru_ipv::model::{capture_llc_stream, min_misses, replay_llc, HierarchyConfig};
use pseudolru_ipv::sim::ReplacementPolicy;
use pseudolru_ipv::traces::parse_spec;

const DEFAULT_SPEC: &str = "\
# A dirty streaming kernel over a hot working set.
name demo-kernel
ipa 3.0
writes 0.3
phase 100000
  loop start=0 ws=3M weight=0.6      # hot data, just under the 4 MB LLC
  stream start=1G region=64M weight=0.4   # pollution
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec_text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_SPEC.to_string(),
    };
    let spec = parse_spec(&spec_text)?;
    println!("workload {:?}: {} phase(s)", spec.name, spec.phases.len());

    let cfg = HierarchyConfig::paper();
    println!("capturing the LLC access stream through L1/L2...");
    let (stream, instructions) = capture_llc_stream(cfg, spec.generator(0).take(400_000));
    println!(
        "{} LLC accesses from {} instructions\n",
        stream.len(),
        instructions
    );

    let warmup = stream.len() / 3;
    let perf = WindowPerfModel::default();
    let candidates: Vec<(&str, Box<dyn ReplacementPolicy>)> = vec![
        ("LRU", Box::new(TrueLru::new(&cfg.llc))),
        ("PseudoLRU", Box::new(PlruPolicy::new(&cfg.llc))),
        ("DRRIP", Box::new(DrripPolicy::new(&cfg.llc)?)),
        (
            "4-DGIPPR",
            Box::new(DgipprPolicy::four_vector(&cfg.llc, vectors::wi_4dgippr())?),
        ),
    ];
    let mut lru_misses = None;
    for (name, policy) in candidates {
        let r = replay_llc(&stream, cfg.llc, policy, warmup, &perf);
        let base = *lru_misses.get_or_insert(r.stats.misses);
        println!(
            "{name:<10} MPKI {:>7.3}   misses vs LRU {:>6.3}",
            r.mpki(),
            r.stats.misses as f64 / base.max(1) as f64
        );
    }
    let min = min_misses(&stream, cfg.llc, warmup);
    println!(
        "{:<10} misses vs LRU {:>6.3} (lower bound)",
        "MIN",
        min.misses as f64 / lru_misses.unwrap_or(1).max(1) as f64
    );
    Ok(())
}
