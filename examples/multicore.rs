//! Multi-core shared LLC (the paper's future-work item 4): two benchmarks
//! co-scheduled over one LLC, comparing replacement policies by per-core
//! miss attribution and weighted speedup.
//!
//! Run with: `cargo run --release --example multicore -- [benchA] [benchB]`

use pseudolru_ipv::baselines::TrueLru;
use pseudolru_ipv::gippr::{vectors, DgipprPolicy};
use pseudolru_ipv::model::cpi::LinearCpiModel;
use pseudolru_ipv::model::multicore::{weighted_speedup, MulticoreHierarchy};
use pseudolru_ipv::model::HierarchyConfig;
use pseudolru_ipv::sim::{Access, ReplacementPolicy};
use pseudolru_ipv::traces::spec2006::Spec2006;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = args
        .first()
        .and_then(|n| Spec2006::from_name(n))
        .unwrap_or(Spec2006::Libquantum);
    let b = args
        .get(1)
        .and_then(|n| Spec2006::from_name(n))
        .unwrap_or(Spec2006::DealII);
    let shift = 3; // 512 KB LLC for a fast demo; use 0 for the full 4 MB
    let cfg = HierarchyConfig::paper_scaled(shift)?;
    let per_core = 200_000;

    println!("co-scheduling {a} and {b} over a shared {} LLC\n", cfg.llc);
    let model = LinearCpiModel::default();
    let mut lru_cycles = [0.0f64; 2];
    for (name, policy) in [
        (
            "LRU",
            Box::new(TrueLru::new(&cfg.llc)) as Box<dyn ReplacementPolicy>,
        ),
        (
            "4-DGIPPR",
            Box::new(DgipprPolicy::four_vector(&cfg.llc, vectors::wi_4dgippr())?),
        ),
    ] {
        let mut mc = MulticoreHierarchy::new(2, cfg, policy);
        let sa: Vec<Access> = a
            .workload()
            .scaled_down(shift)
            .generator(0)
            .take(per_core)
            .collect();
        let sb: Vec<Access> = b
            .workload()
            .scaled_down(shift)
            .generator(0)
            .take(per_core)
            .collect();
        mc.run_interleaved(vec![sa.into_iter(), sb.into_iter()], per_core);
        let cycles = [
            model.cycles(mc.instructions(0), mc.llc_stats(0).misses),
            model.cycles(mc.instructions(1), mc.llc_stats(1).misses),
        ];
        println!("{name}:");
        println!("  core 0 ({a}): {} LLC misses", mc.llc_stats(0).misses);
        println!("  core 1 ({b}): {} LLC misses", mc.llc_stats(1).misses);
        if name == "LRU" {
            lru_cycles = cycles;
        } else {
            println!(
                "  weighted speedup over shared LRU: {:.3}",
                weighted_speedup(&lru_cycles, &cycles)
            );
        }
        println!();
    }
    Ok(())
}
