//! Trace tooling: generate a synthetic SPEC-like reference trace, store it
//! in the binary container format, read it back (CRC-verified), and replay
//! it through the memory hierarchy.
//!
//! Run with: `cargo run --release --example trace_tools -- [benchmark] [n_accesses]`

use pseudolru_ipv::gippr::PlruPolicy;
use pseudolru_ipv::model::{Hierarchy, HierarchyConfig};
use pseudolru_ipv::traces::spec2006::Spec2006;
use pseudolru_ipv::traces::{TraceReader, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args
        .first()
        .and_then(|n| Spec2006::from_name(n))
        .unwrap_or(Spec2006::Mcf);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    let path = std::env::temp_dir().join(format!("{}.plrutrc", bench.name()));
    println!("generating {n} accesses of {bench} into {}", path.display());
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&path)?))?; // lint: direct-write (scratch file in a demo)
    for access in bench.workload().generator(0).take(n) {
        writer.write(&access)?;
    }
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {bytes} bytes ({:.1} B/record)",
        bytes as f64 / n as f64
    );

    println!("reading back with CRC verification and replaying through L1/L2/LLC...");
    let reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
    let config = HierarchyConfig::paper();
    let mut hierarchy = Hierarchy::new(config, Box::new(PlruPolicy::new(&config.llc)));
    for record in reader {
        hierarchy.access(&record?);
    }
    println!("instructions: {}", hierarchy.instructions());
    println!("L1  {}", hierarchy.l1_stats());
    println!("L2  {}", hierarchy.l2_stats());
    println!("LLC {}", hierarchy.llc_stats());
    println!(
        "LLC MPKI: {:.3}",
        hierarchy.llc_stats().mpki(hierarchy.instructions())
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
