//! Policy shoot-out: run every replacement policy in the workspace over a
//! chosen SPEC CPU 2006 workload model and report MPKI and speedup vs LRU.
//!
//! Run with: `cargo run --release --example policy_shootout -- [benchmark] [quick|medium|paper]`
//! e.g. `cargo run --release --example policy_shootout -- 462.libquantum quick`

use pseudolru_ipv::harness::report::{fmt_pct, fmt_ratio};
use pseudolru_ipv::harness::{measure_policy, policies, prepare_workloads, Scale, Table};
use pseudolru_ipv::traces::spec2006::Spec2006;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args
        .first()
        .map(|name| Spec2006::from_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")))
        .unwrap_or(Spec2006::Libquantum);
    let scale = args
        .get(1)
        .and_then(|s| Scale::parse(s))
        .unwrap_or(Scale::Quick);

    println!("preparing {bench} at {scale} scale...");
    let workloads = prepare_workloads(scale, &[bench]);
    let geom = scale.hierarchy().llc;
    let w = &workloads[0];

    let mut roster = policies::baseline_roster(0xCAFE);
    roster.push((
        "GIPLR",
        policies::giplr(pseudolru_ipv::gippr::vectors::giplr_best(), "GIPLR"),
    ));
    roster.push((
        "WI-GIPPR",
        policies::gippr(pseudolru_ipv::gippr::vectors::wi_gippr(), "WI-GIPPR"),
    ));
    roster.push((
        "WI-2-DGIPPR",
        policies::dgippr(
            pseudolru_ipv::gippr::vectors::wi_2dgippr().to_vec(),
            "WI-2-DGIPPR",
        ),
    ));
    roster.push((
        "WI-4-DGIPPR",
        policies::dgippr(
            pseudolru_ipv::gippr::vectors::wi_4dgippr().to_vec(),
            "WI-4-DGIPPR",
        ),
    ));

    let mut table = Table::new(
        &format!("policy shoot-out on {bench} ({scale} scale)"),
        &["policy", "MPKI", "misses vs LRU", "speedup vs LRU"],
    );
    for (name, factory) in &roster {
        let m = measure_policy(w, factory, geom);
        table.row(vec![
            name.to_string(),
            format!("{:.3}", m.mpki),
            fmt_ratio(m.normalized_misses(&w.lru)),
            fmt_pct(m.speedup_over(&w.lru)),
        ]);
    }
    let min = pseudolru_ipv::harness::measure_min(w, geom);
    table.row(vec![
        "Optimal (MIN)".to_string(),
        "-".to_string(),
        fmt_ratio(min.normalized_misses(&w.lru)),
        "n/a".to_string(),
    ]);
    println!("{table}");
}
