//! Evolve your own insertion/promotion vector with the genetic algorithm,
//! then refine it by hill climbing — the paper's Section 4 methodology in
//! one command.
//!
//! Run with: `cargo run --release --example evolve_ipv -- [quick|medium|paper]`

use pseudolru_ipv::evolve::{hillclimb, FitnessContext, Ga, Substrate};
use pseudolru_ipv::harness::Scale;
use pseudolru_ipv::traces::spec2006::Spec2006;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Quick);

    // A memory-intensive training mix.
    let training = [
        Spec2006::Libquantum,
        Spec2006::CactusADM,
        Spec2006::Mcf,
        Spec2006::Sphinx3,
        Spec2006::Hmmer,
        Spec2006::DealII, // keeps the GA honest about LRU-friendly phases
    ];
    println!(
        "capturing LLC streams for {} workloads at {scale} scale...",
        training.len()
    );
    let ctx = FitnessContext::for_benchmarks(
        &training,
        scale.simpoints(),
        scale.ga_accesses(),
        scale.fitness(),
    );

    println!("running the genetic algorithm ({:?})...", scale.ga(42));
    let result = Ga::new(scale.ga(42)).run_single(&ctx, Substrate::Plru);
    println!("GA best vector: {}", result.best);
    println!(
        "GA fitness (mean speedup over LRU): {:.4}",
        result.best_fitness
    );
    println!("fitness per generation: {:?}", result.history);

    println!("hill-climbing refinement...");
    let (refined, fitness) = hillclimb(&ctx, Substrate::Plru, result.best, 2);
    println!("refined vector: {refined}");
    println!("refined fitness: {fitness:.4}");

    println!("\nper-workload speedups of the refined vector:");
    for (name, speedup) in ctx.per_workload_single(&refined, Substrate::Plru) {
        println!("  {name:<20} {speedup:.4}");
    }
    println!(
        "\n(the paper's workload-inclusive GIPPR vector, for comparison: {})",
        pseudolru_ipv::gippr::vectors::wi_gippr()
    );
}
