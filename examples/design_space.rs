//! Explore the insertion/promotion design space at random (the paper's
//! Figure 1 in miniature) and print an ASCII distribution of speedups.
//!
//! Run with: `cargo run --release --example design_space -- [samples]`

use pseudolru_ipv::evolve::{random_search, FitnessContext, FitnessScale, Substrate};
use pseudolru_ipv::traces::spec2006::Spec2006;

fn main() {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let ctx = FitnessContext::for_benchmarks(
        &[
            Spec2006::Libquantum,
            Spec2006::CactusADM,
            Spec2006::DealII,
            Spec2006::Gcc,
        ],
        1,
        20_000,
        FitnessScale {
            shift: 5,
            threads: 1,
        },
    );
    println!("scoring {samples} uniformly random IPVs (16^17 possible)...");
    let results = random_search(&ctx, Substrate::Plru, samples, 1);

    // Histogram over speedup buckets.
    let lo = results.first().map(|r| r.1).unwrap_or(1.0);
    let hi = results.last().map(|r| r.1).unwrap_or(1.0);
    const BUCKETS: usize = 12;
    let width = ((hi - lo) / BUCKETS as f64).max(1e-9);
    let mut counts = [0usize; BUCKETS];
    for (_, s) in &results {
        let b = (((s - lo) / width) as usize).min(BUCKETS - 1);
        counts[b] += 1;
    }
    println!("speedup distribution over LRU:");
    for (i, count) in counts.iter().enumerate() {
        let left = lo + i as f64 * width;
        println!(
            "  {:>6.3}..{:>6.3} | {}",
            left,
            left + width,
            "#".repeat(*count)
        );
    }
    let below = results.iter().filter(|(_, s)| *s < 1.0).count();
    println!(
        "\n{below}/{samples} random vectors are worse than LRU; best found: {:.3}x with {}",
        hi,
        results
            .last()
            .map(|(v, _)| v.to_string())
            .unwrap_or_default()
    );
    println!(
        "(the paper: most random points are inferior to LRU, the best reach ~1.028x — \
              genetic search is needed to go further)"
    );
}
